"""The data-resharing problem (Section VI open problem).

"As long as the friends of a user are trustable and do not reshare the data
which the user shared with them, no problem will be faced.  However, there
is no control if they want to reshare the user's data with others ...  The
main problem is how it would be possible to prevent a user's friends from
re-sharing the user's data."

The paper states the problem is unsolved — and it is: once a friend can
*read* content, they can copy it.  This module makes the claim executable:

* :class:`ResharingSimulation` spreads a secret through a social graph
  where each reader reshares with independent probability, proving that
  *any* nonzero resharing probability leaks beyond the intended audience;
* per-recipient **watermarking** (the only deployed mitigation: deterrence
  by traitor-tracing, not prevention) is implemented so experiments can
  show what it does and does not give you — the leaker is identifiable,
  the leak itself is not prevented.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.crypto.hashing import hmac_sha256
from repro.exceptions import ReproError


def watermark(content: bytes, owner_key: bytes, recipient: str) -> bytes:
    """Embed a per-recipient tag: ``content || tag`` (keyed, unforgeable).

    Real systems hide the mark steganographically; for the simulation the
    relevant property is only that marks are recipient-specific and keyed.
    """
    tag = hmac_sha256(owner_key, content + recipient.encode())[:16]
    return content + b"|wm|" + tag


def trace_leak(leaked: bytes, owner_key: bytes,
               recipients: Sequence[str]) -> Optional[str]:
    """Identify which recipient's copy was leaked (traitor tracing)."""
    if b"|wm|" not in leaked:
        return None
    content, _, tag = leaked.rpartition(b"|wm|")
    for recipient in recipients:
        expected = hmac_sha256(owner_key, content + recipient.encode())[:16]
        if expected == tag:
            return recipient
    return None


@dataclass
class ResharingSimulation:
    """Stochastic resharing spread through a social graph."""

    graph: nx.Graph
    reshare_probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reshare_probability <= 1.0:
            raise ReproError("reshare probability must be in [0, 1]")

    def run(self, owner: str, audience: Sequence[str],
            rounds: int = 6) -> Dict[str, object]:
        """Share with ``audience``; let readers reshare for ``rounds``.

        Every holder reshares to each of their friends independently with
        ``reshare_probability`` per round.  Returns spread statistics,
        including how far beyond the intended audience the content
        travelled — the quantity no access-control scheme bounds.
        """
        if owner not in self.graph:
            raise ReproError(f"{owner!r} not in the graph")
        rng = _random.Random(self.seed)
        intended = set(audience) | {owner}
        holders: Set[str] = set(intended)
        first_seen: Dict[str, int] = {user: 0 for user in holders}
        for round_number in range(1, rounds + 1):
            new_holders: Set[str] = set()
            for holder in holders:
                for friend in self.graph.neighbors(holder):
                    friend = str(friend)
                    if friend in holders or friend in new_holders:
                        continue
                    if rng.random() < self.reshare_probability:
                        new_holders.add(friend)
                        first_seen[friend] = round_number
            if not new_holders:
                break
            holders |= new_holders
        unintended = holders - intended
        return {
            "holders": holders,
            "unintended": unintended,
            "unintended_fraction": (len(unintended)
                                    / max(1, self.graph.number_of_nodes()
                                          - len(intended))),
            "rounds_run": max(first_seen.values()),
            "first_seen": first_seen,
        }

    def run_with_watermarks(self, owner: str, audience: Sequence[str],
                            content: bytes, owner_key: bytes,
                            rounds: int = 6) -> Dict[str, object]:
        """Same spread, but each audience copy is watermarked.

        When the content escapes, the *first* resharer is traceable from
        any leaked copy — deterrence, not prevention, which is the honest
        summary of the state of the art the paper calls for improving.
        """
        result = self.run(owner, audience, rounds)
        rng = _random.Random(self.seed + 1)
        copies = {user: watermark(content, owner_key, user)
                  for user in audience}
        leak_origins: Dict[str, str] = {}
        for user in sorted(result["unintended"]):
            # whoever reshared to this user forwarded some audience copy;
            # approximate by nearest audience member in the graph
            reachable = [a for a in audience
                         if nx.has_path(self.graph, a, user)]
            if reachable:
                origin = min(reachable, key=lambda a:
                             nx.shortest_path_length(self.graph, a, user))
                leak_origins[user] = origin
        traced = {user: trace_leak(copies[origin], owner_key, audience)
                  for user, origin in leak_origins.items()}
        result["traceable"] = all(v is not None for v in traced.values())
        result["traced_origins"] = traced
        return result
