"""Sybil attacks on the trust/reputation layer (Section VI concern).

"In a sybil attack, the reputation system of a network will be subverted by
[an] attacker who makes (usually multiple) pseudonymous entities."

Implemented:

* :func:`inject_sybils` — grow a sybil region: ``count`` fake identities
  densely connected to each other, attached to the honest region through a
  limited number of *attack edges* (the quantity that social-graph sybil
  defences bound);
* :class:`SybilAttack` — measures what the sybils achieve against the
  trust-chain ranking of :mod:`repro.search.trust`: how highly a sybil can
  rank in an honest user's friend search;
* :func:`degree_cut_detection` — the classic structural defence intuition
  (SybilGuard family): random walks starting at honest nodes rarely cross
  the thin attack-edge cut, so sybils get low acceptance rates.  The walk
  engine itself lives in :mod:`repro.adversary.walks` (shared with the
  routing-adversary subsystem); this module keeps the E9-facing metric.

Experiment E9 shows the paper's implied point: popularity-style signals are
forgeable by sybils, trust chains bound the damage by the attack-edge cut,
and random-walk defences detect the region.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.adversary.walks import random_walk_landings, region_mass
from repro.exceptions import ReproError
from repro.search.trust import best_trust_chain, rank_results


def inject_sybils(graph: nx.Graph, count: int, attack_edges: int,
                  seed: int = 0, sybil_trust: float = 0.9,
                  victim_trust: float = 0.6) -> Tuple[nx.Graph, List[str]]:
    """Attach a dense sybil region to a copy of ``graph``.

    Sybils trust each other fully (they are one attacker); ``attack_edges``
    honest users are tricked into befriending one sybil each with edge
    trust ``victim_trust``.  Returns ``(augmented graph, sybil names)``.
    """
    if count < 1 or attack_edges < 0:
        raise ReproError("need count >= 1 and attack_edges >= 0")
    rng = _random.Random(seed)
    work = graph.copy()
    sybils = [f"sybil{i}" for i in range(count)]
    for name in sybils:
        work.add_node(name)
    # dense internal structure: ring + chords, all high trust
    for i, name in enumerate(sybils):
        work.add_edge(name, sybils[(i + 1) % count], trust=sybil_trust)
        work.add_edge(name, sybils[(i + count // 2) % count],
                      trust=sybil_trust)
    honest = sorted(str(n) for n in graph.nodes)
    victims = rng.sample(honest, min(attack_edges, len(honest)))
    for victim in victims:
        work.add_edge(victim, rng.choice(sybils), trust=victim_trust)
    return work, sybils


@dataclass
class SybilAttack:
    """Measure a sybil region's success against trust-ranked search."""

    graph: nx.Graph
    sybils: List[str]

    def best_sybil_trust(self, searcher: str,
                         max_depth: int = 4) -> float:
        """The highest derived trust any sybil achieves from ``searcher``."""
        best = 0.0
        for sybil in self.sybils:
            trust, _ = best_trust_chain(self.graph, searcher, sybil,
                                        max_depth)
            best = max(best, trust)
        return best

    def ranking_infiltration(self, searcher: str,
                             honest_candidates: Sequence[str],
                             top_k: int = 10) -> float:
        """Fraction of the search top-k occupied by sybils.

        The candidate pool is honest candidates plus all sybils, ranked
        with the *popularity-blended* scorer — the configuration the paper
        implies is gameable, since sybils manufacture their own degree.
        """
        candidates = list(honest_candidates) + self.sybils
        ranked = rank_results(self.graph, searcher, candidates,
                              trust_weight=0.5)
        top = [r.user for r in ranked[:top_k]]
        return sum(1 for user in top if user in self.sybils) / top_k


def degree_cut_detection(graph: nx.Graph, sybils: Sequence[str],
                         walk_length: int = 10, walks_per_node: int = 20,
                         seed: int = 0) -> Dict[str, float]:
    """Random-walk acceptance rates (the SybilGuard intuition).

    From a fixed honest verifier, short random walks end in the sybil
    region only if they cross the thin attack-edge cut.  Returns, for a
    sample of honest nodes and every sybil, the fraction of walks from the
    verifier that end at (or pass through) that node's region — honest
    nodes score high, sybils near zero when attack edges are few.
    """
    rng = _random.Random(seed)
    sybil_set = set(sybils)
    honest = sorted(n for n in graph.nodes if n not in sybil_set)
    if not honest:
        raise ReproError("no honest nodes")
    verifier = honest[0]
    total_walks = walks_per_node * len(honest[:20])
    landings = random_walk_landings(graph, verifier, total_walks,
                                    walk_length, rng)
    # Region-level acceptance: probability mass landing in each region.
    sybil_mass = region_mass(landings, sybil_set, total_walks)
    honest_mass = 1.0 - sybil_mass
    return {
        "sybil_region_mass": sybil_mass,
        "honest_region_mass": honest_mass,
        "sybil_count_fraction": len(sybil_set) / graph.number_of_nodes(),
    }
