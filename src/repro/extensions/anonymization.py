"""OSN graph anonymization and de-anonymization (Section VI concern).

"OSN providers publish their data for the research activities ... There
should be an 'anonymized' way that lets the OSN providers publish these
data sets ... Obtaining the anonymized data, one can reverse the
anonymization process and identify the corresponding nodes (which is known
as de-anonymization)."

Implemented:

* :func:`naive_anonymize`   — identifier removal only (the pre-2008
  industry practice);
* :func:`degree_anonymize`  — k-degree anonymity (Liu & Terzi style): add
  edges until every degree value is shared by >= k nodes;
* :func:`deanonymize_by_seeds` — the Narayanan–Shmatikov-style seed-based
  re-identification attack: given a few known (real, anonymous) pairs,
  propagate matches through common-neighbour counts.

Experiment E9 measures re-identification rates against both defences —
reproducing the field's finding that naive anonymization barely slows the
attack down.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ReproError


def naive_anonymize(graph: nx.Graph, seed: int = 0
                    ) -> Tuple[nx.Graph, Dict[str, str]]:
    """Replace node names with random ids; structure untouched.

    Returns ``(anonymized graph, ground-truth mapping real -> anon)``.
    """
    rng = _random.Random(seed)
    nodes = list(graph.nodes)
    rng.shuffle(nodes)
    mapping = {node: f"n{index:05d}" for index, node in enumerate(nodes)}
    return nx.relabel_nodes(graph, mapping), {str(k): v
                                              for k, v in mapping.items()}


def degree_anonymize(graph: nx.Graph, k: int = 3, seed: int = 0
                     ) -> Tuple[nx.Graph, Dict[str, str], int]:
    """k-degree anonymity by edge addition, then identifier removal.

    Greedy repair: while some degree value is held by fewer than ``k``
    nodes, connect two under-represented nodes (preferring pairs that move
    both toward a popular degree).  Returns the anonymized graph, the
    ground-truth mapping, and the number of edges added (the utility cost).
    """
    if k < 1:
        raise ReproError("k must be >= 1")
    rng = _random.Random(seed)
    work = graph.copy()
    added = 0
    for _ in range(30):  # plan-and-wire passes
        if is_k_degree_anonymous(work, k):
            break
        # Liu–Terzi-style planning: sort by degree descending, chunk into
        # groups of >= k, raise everyone to their group's maximum degree.
        ordered = sorted(work.nodes, key=lambda n: -work.degree(n))
        targets: Dict = {}
        index = 0
        while index < len(ordered):
            group = ordered[index:index + k]
            if len(ordered) - (index + k) < k:
                group = ordered[index:]  # merge the remainder
            group_target = work.degree(group[0])
            for node in group:
                targets[node] = group_target
            index += len(group)
        # Wire deficits pairwise: each added edge satisfies two deficits.
        deficits: List = []
        for node, target in targets.items():
            deficits.extend([node] * (target - work.degree(node)))
        rng.shuffle(deficits)
        while len(deficits) >= 2:
            u = deficits.pop()
            partner_index = next(
                (i for i, v in enumerate(deficits)
                 if v != u and not work.has_edge(u, v)), None)
            if partner_index is None:
                # no pairable deficit: connect to any non-neighbor and
                # let the next planning pass absorb the perturbation
                candidates = [n for n in work.nodes
                              if n != u and not work.has_edge(u, n)]
                if candidates:
                    work.add_edge(u, rng.choice(candidates))
                    added += 1
                continue
            v = deficits.pop(partner_index)
            work.add_edge(u, v)
            added += 1
        if deficits:
            u = deficits.pop()
            candidates = [n for n in work.nodes
                          if n != u and not work.has_edge(u, n)]
            if candidates:
                work.add_edge(u, rng.choice(candidates))
                added += 1
    anonymized, mapping = naive_anonymize(work, seed=seed + 1)
    return anonymized, mapping, added


def is_k_degree_anonymous(graph: nx.Graph, k: int) -> bool:
    """Check the k-degree anonymity property."""
    counts = Counter(d for _, d in graph.degree())
    return all(count >= k for count in counts.values())


def deanonymize_by_seeds(original: nx.Graph, anonymized: nx.Graph,
                         seeds: Dict[str, str],
                         rounds: int = 8) -> Dict[str, str]:
    """Seed-and-propagate re-identification.

    ``seeds`` maps a few known real nodes to their anonymized ids (the
    auxiliary information a real attacker buys or scrapes).  Each round,
    every unmatched real node is paired with the unmatched anonymous node
    sharing the most already-matched neighbours; confident matches (>= 2
    shared, unique argmax) are locked in and fuel the next round.

    Returns the full predicted mapping (including the seeds).
    """
    matched: Dict[str, str] = dict(seeds)
    reverse = {v: k for k, v in matched.items()}
    for _ in range(rounds):
        progress = False
        unmatched_real = [n for n in original.nodes
                          if str(n) not in matched]
        unmatched_anon = {n for n in anonymized.nodes
                          if n not in reverse}
        for real in unmatched_real:
            # anonymized ids of real's already-matched neighbours
            anchor = {matched[str(n)] for n in original.neighbors(real)
                      if str(n) in matched}
            if len(anchor) < 2:
                continue
            scores = Counter()
            for anon_anchor in anchor:
                for candidate in anonymized.neighbors(anon_anchor):
                    if candidate in unmatched_anon:
                        scores[candidate] += 1
            if not scores:
                continue
            ranked = scores.most_common(2)
            best, best_score = ranked[0]
            if best_score < 2:
                continue
            if len(ranked) > 1 and ranked[1][1] == best_score:
                continue  # ambiguous: do not guess
            matched[str(real)] = best
            reverse[best] = str(real)
            unmatched_anon.discard(best)
            progress = True
        if not progress:
            break
    return matched


def reidentification_rate(truth: Dict[str, str],
                          predicted: Dict[str, str],
                          seeds: Dict[str, str]) -> float:
    """Fraction of non-seed nodes correctly re-identified."""
    scored = [real for real in predicted if real not in seeds]
    if not scored:
        return 0.0
    correct = sum(1 for real in scored if truth.get(real)
                  == predicted[real])
    return correct / len(truth)
