"""Demonstrators for the paper's open problems (Section VI).

The survey closes with unsolved problems and out-of-scope concerns.  These
modules implement executable versions of each — the attack where the paper
says the problem is open, plus the best-known mitigation where it cites
one — so the experiment suite can measure the gaps the paper points at:

==============================  ==========================================
Open problem / concern          Module
==============================  ==========================================
Implicit information leakage /  :mod:`repro.extensions.inference`
network inference
Data resharing                  :mod:`repro.extensions.resharing`
Privacy-preserving advertising  :mod:`repro.extensions.advertising`
Sybil attacks                   :mod:`repro.extensions.sybil`
OSN anonymization and           :mod:`repro.extensions.anonymization`
de-anonymization
==============================  ==========================================
"""

from repro.extensions.advertising import (AdBroker, AdClient, Advertisement,
                                          TrackingAdServer)
from repro.extensions.anonymization import (deanonymize_by_seeds,
                                            degree_anonymize,
                                            naive_anonymize)
from repro.extensions.inference import (attribute_inference_accuracy,
                                        infer_attributes)
from repro.extensions.resharing import ResharingSimulation
from repro.extensions.sybil import (SybilAttack, degree_cut_detection,
                                    inject_sybils)

__all__ = [
    "AdBroker", "AdClient", "Advertisement", "ResharingSimulation",
    "SybilAttack", "TrackingAdServer", "attribute_inference_accuracy",
    "deanonymize_by_seeds", "degree_anonymize", "degree_cut_detection",
    "infer_attributes", "inject_sybils", "naive_anonymize",
]
