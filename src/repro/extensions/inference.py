"""Implicit information leakage: inferring hidden attributes (Section VI).

"Certain kind of information can implicitly be derived from published
data ... It is important to identify what kind of information can be
inferred from a published and seemingly simple data ... To the best of our
knowledge, no solution for the implicit information leakage has been
proposed so far."

The classic concrete instance is *homophily inference*: even if a user
hides an attribute (city, employer, politics), the majority value among
their friends who publish it predicts it well.  This module implements
the attack so experiments can quantify the leak as a function of how many
users hide the attribute — demonstrating exactly why per-user access
control does not compose into network-level privacy ("security and privacy
is a collective phenomenon").
"""

from __future__ import annotations

import random as _random
from collections import Counter
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.exceptions import ReproError


def infer_attributes(graph: nx.Graph, public_values: Dict[str, str],
                     targets: Optional[list] = None,
                     min_votes: int = 1) -> Dict[str, Tuple[str, float]]:
    """Infer hidden attribute values by friend majority vote.

    ``public_values`` maps users who *disclose* the attribute to its value.
    For each target (default: every node not in ``public_values``) the
    attack returns ``(predicted value, confidence)`` where confidence is
    the winning fraction among disclosing neighbours.  Targets with fewer
    than ``min_votes`` disclosing neighbours are skipped — no evidence, no
    inference.
    """
    if targets is None:
        targets = [n for n in graph.nodes if n not in public_values]
    predictions: Dict[str, Tuple[str, float]] = {}
    for target in targets:
        votes = Counter(public_values[neighbor]
                        for neighbor in graph.neighbors(target)
                        if neighbor in public_values)
        total = sum(votes.values())
        if total < min_votes:
            continue
        value, count = votes.most_common(1)[0]
        predictions[target] = (value, count / total)
    return predictions


def attribute_inference_accuracy(graph: nx.Graph,
                                 true_values: Dict[str, str],
                                 hide_fraction: float,
                                 seed: int = 0,
                                 min_votes: int = 1) -> Tuple[float, float]:
    """The leak, quantified: hide the attribute for a random fraction of
    users, run the inference, and score it.

    Returns ``(accuracy on hidden users, coverage)`` where coverage is the
    fraction of hidden users the attacker could make a prediction for.
    This is the curve experiment E9 sweeps: even at high hide rates the
    disclosed minority betrays the rest.
    """
    if not 0.0 <= hide_fraction <= 1.0:
        raise ReproError("hide_fraction must be in [0, 1]")
    rng = _random.Random(seed)
    users = sorted(true_values)
    hidden = set(rng.sample(users, int(hide_fraction * len(users))))
    public = {u: v for u, v in true_values.items() if u not in hidden}
    predictions = infer_attributes(graph, public, targets=sorted(hidden),
                                   min_votes=min_votes)
    if not hidden:
        return (0.0, 0.0)
    correct = sum(1 for user, (value, _) in predictions.items()
                  if true_values[user] == value)
    coverage = len(predictions) / len(hidden)
    accuracy = correct / len(predictions) if predictions else 0.0
    return accuracy, coverage


def plant_homophilous_attribute(graph: nx.Graph, values: Tuple[str, ...],
                                homophily: float = 0.8,
                                seed: int = 0) -> Dict[str, str]:
    """Generate ground-truth attributes with tunable homophily.

    Greedy label propagation: each node takes the majority neighbour label
    with probability ``homophily``, a uniform random label otherwise.
    ``homophily=0`` gives independent labels (the inference attack should
    then do no better than chance) — the control for experiment E9.
    """
    if not values:
        raise ReproError("need at least one attribute value")
    rng = _random.Random(seed)
    labels: Dict[str, str] = {}
    for node in graph.nodes:
        labels[str(node)] = rng.choice(values)
    # A few propagation sweeps create correlated regions.
    for _ in range(3):
        for node in graph.nodes:
            neighbors = [labels[str(n)] for n in graph.neighbors(node)]
            if neighbors and rng.random() < homophily:
                labels[str(node)] = Counter(neighbors).most_common(1)[0][0]
    return labels
