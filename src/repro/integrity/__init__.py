"""Data integrity mechanisms (Section IV / Table I).

The paper's four integrity aspects, each with its implementing module:

=====================================  =====================================
Aspect (party-invitation scenario)     Implementation
=====================================  =====================================
Integrity of data owner & content      :mod:`repro.integrity.envelope`
Historical integrity (hash chaining)   :mod:`repro.integrity.hashchain`
Historical integrity (cross-user)      :mod:`repro.integrity.entanglement`
Historical integrity (fork consist.)   :mod:`repro.integrity.history_tree`
Integrity of data relations            :mod:`repro.integrity.relations`
=====================================  =====================================
"""

from repro.integrity.envelope import (MessageEnvelope, open_envelope, seal,
                                      tampered_with)
from repro.integrity.hashchain import (ChainEntry, OrderProof, Timeline,
                                       TimelineView, order_proof,
                                       verify_order_proof)
from repro.integrity.entanglement import EntanglementGraph, cite
from repro.integrity.history_tree import (FortClient, ForkEvidence,
                                          ForkingServer, HistoryServer,
                                          ObjectHistory, Operation,
                                          SignedRoot)
from repro.integrity.relations import (Comment, CommentablePost, create_post,
                                       unwrap_signing_key, verify_comment,
                                       write_comment)

__all__ = [
    "ChainEntry", "Comment", "CommentablePost", "EntanglementGraph",
    "ForkEvidence", "ForkingServer", "FortClient", "HistoryServer",
    "MessageEnvelope", "ObjectHistory", "Operation", "OrderProof",
    "SignedRoot", "Timeline", "TimelineView", "cite", "create_post",
    "open_envelope", "order_proof", "seal", "tampered_with",
    "unwrap_signing_key", "verify_comment", "verify_order_proof",
    "write_comment",
]

# Claim the Table I "Data integrity" rows at the definition site; the
# generated matrix (repro.stack.table1) reads these registrations.
from repro.stack.registry import register_mechanism as _register_mechanism

_register_mechanism("Data integrity",
                    "Integrity of data owner and data content",
                    MessageEnvelope)
_register_mechanism("Data integrity", "Historical integrity",
                    Timeline, EntanglementGraph, FortClient)
_register_mechanism("Data integrity", "Integrity of data relations",
                    CommentablePost, MessageEnvelope)
