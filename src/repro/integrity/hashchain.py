"""Hash-chained timelines: provable partial order of a user's posts.

Section IV-B of the paper: "For the data history integrity, one solution is
to use hash chaining alongside digital signature.  In this method, the
digital signature must be applied on each entry published by a user, and
includes the hash of at least one of his prior posts.  This causes a
provable partial ordering for his posts" — the FETHR (birds-of-a-FETHR)
micropublishing design.

:class:`Timeline` is the author side (append + sign); :class:`TimelineView`
is the follower side, which accepts entries in order, verifies the chain
links and signatures, and can produce/check :func:`order_proof` — the
chain segment showing entry ``i`` provably precedes entry ``j``.
"""

from __future__ import annotations

import dataclasses
import random as _random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import chain_hash, digest, digest_many
from repro.crypto.signatures import SchnorrPublicKey, SchnorrSigner
from repro.exceptions import IntegrityError

#: The link value "before the first entry" of every timeline.
GENESIS = digest(b"repro/hashchain/genesis")


@dataclass(frozen=True)
class ChainEntry:
    """One signed timeline entry.

    ``previous`` is the hash of the preceding entry (GENESIS for the
    first); ``citations`` optionally carry hashes of *other users'* entries
    for cross-timeline entanglement (see :mod:`repro.integrity.entanglement`).
    """

    author: str
    sequence: int
    previous: bytes
    payload: bytes
    citations: Tuple[Tuple[str, int, bytes], ...]
    signature: Tuple[int, int]

    def entry_hash(self) -> bytes:
        """The value the *next* entry chains to (covers the signature too)."""
        return digest_many([
            self.author.encode(), self.sequence.to_bytes(8, "big"),
            self.previous, self.payload,
            *(f"{a}:{s}".encode() + h for a, s, h in self.citations),
            repr(self.signature).encode(),
        ])

    def signed_bytes(self) -> bytes:
        """What the author signed."""
        return digest_many([
            b"repro/hashchain/v1", self.author.encode(),
            self.sequence.to_bytes(8, "big"), self.previous, self.payload,
            *(f"{a}:{s}".encode() + h for a, s, h in self.citations),
        ])


class Timeline:
    """Author-side append-only hash-chained log."""

    def __init__(self, author: str, signer: SchnorrSigner) -> None:
        self.author = author
        self._signer = signer
        self.entries: List[ChainEntry] = []

    @property
    def head_hash(self) -> bytes:
        """Hash of the latest entry (GENESIS when empty)."""
        return self.entries[-1].entry_hash() if self.entries else GENESIS

    def publish(self, payload: bytes,
                citations: Sequence[Tuple[str, int, bytes]] = (),
                rng: Optional[_random.Random] = None) -> ChainEntry:
        """Append a signed entry chaining to the current head."""
        entry = ChainEntry(
            author=self.author, sequence=len(self.entries),
            previous=self.head_hash, payload=payload,
            citations=tuple(citations),
            signature=(0, 0))
        signed = dataclasses.replace(
            entry, signature=self._signer.sign(entry.signed_bytes(), rng=rng))
        self.entries.append(signed)
        return signed


class TimelineView:
    """Follower-side verified replica of one author's timeline."""

    def __init__(self, author: str, author_key: SchnorrPublicKey) -> None:
        self.author = author
        self.author_key = author_key
        self.entries: List[ChainEntry] = []

    @property
    def head_hash(self) -> bytes:
        """Hash of the latest accepted entry."""
        return self.entries[-1].entry_hash() if self.entries else GENESIS

    def accept(self, entry: ChainEntry) -> None:
        """Verify and append one entry; raises on any violation."""
        if entry.author != self.author:
            raise IntegrityError(
                f"entry authored by {entry.author!r}, expected "
                f"{self.author!r}")
        if entry.sequence != len(self.entries):
            raise IntegrityError(
                f"sequence gap: got {entry.sequence}, expected "
                f"{len(self.entries)} (missing or replayed entries)")
        if entry.previous != self.head_hash:
            raise IntegrityError(
                "chain break: entry does not link to the current head "
                "(history was rewritten or an entry was suppressed)")
        if not self.author_key.verify(entry.signed_bytes(), entry.signature):
            raise IntegrityError("entry signature does not verify")
        self.entries.append(entry)

    def accept_all(self, entries: Sequence[ChainEntry]) -> None:
        """Accept a batch in order."""
        for entry in entries:
            self.accept(entry)


@dataclass(frozen=True)
class OrderProof:
    """Evidence that entry ``earlier`` precedes ``later`` in one timeline.

    The proof is the contiguous chain segment from ``earlier`` to ``later``;
    a verifier needs only the author's public key — no trusted replica.
    """

    segment: Tuple[ChainEntry, ...]

    @property
    def earlier(self) -> ChainEntry:
        return self.segment[0]

    @property
    def later(self) -> ChainEntry:
        return self.segment[-1]


def order_proof(entries: Sequence[ChainEntry], earlier_seq: int,
                later_seq: int) -> OrderProof:
    """Extract the chain segment proving ``earlier_seq < later_seq``."""
    if not 0 <= earlier_seq < later_seq < len(entries):
        raise IntegrityError("order proof needs earlier < later, in range")
    return OrderProof(segment=tuple(entries[earlier_seq:later_seq + 1]))


def verify_order_proof(proof: OrderProof,
                       author_key: SchnorrPublicKey) -> bool:
    """Check signatures and chain links along the proof segment."""
    previous_hash: Optional[bytes] = None
    for entry in proof.segment:
        if not author_key.verify(entry.signed_bytes(), entry.signature):
            return False
        if previous_hash is not None and entry.previous != previous_hash:
            return False
        previous_hash = entry.entry_hash()
    return len(proof.segment) >= 2
