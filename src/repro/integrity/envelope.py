"""Signed message envelopes: owner, content, relation and expiry integrity.

Section IV of the paper frames data integrity with the party-invitation
scenario: Alice receives "Come to my party held at my home on Friday" and
must decide (a) is the sender really Bob? (b) is the content unmodified?
(c) is the invitation current or expired? (d) was it issued *for Alice* or
is it someone else's invitation replayed at her?

:class:`MessageEnvelope` answers all four with one Schnorr signature over a
canonical encoding that includes sender, optional recipient, issue/expiry
times and a sequence number.  The test-suite's "party scenario" tests map
each tampering attempt to the exact check that catches it.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.hashing import digest_many
from repro.crypto.signatures import SchnorrPublicKey, SchnorrSigner
from repro.exceptions import IntegrityError


@dataclass(frozen=True)
class MessageEnvelope:
    """An immutable signed message.

    ``recipient=None`` means a broadcast (wall post); a named recipient
    binds the message to one reader — the paper's "integrity of the data
    relations" for direct messages.
    """

    sender: str
    recipient: Optional[str]
    body: bytes
    issued_at: float
    expires_at: Optional[float]
    sequence: int
    signature: Tuple[int, int]

    def canonical_bytes(self) -> bytes:
        """The byte string the signature covers (length-framed fields)."""
        return _canonical(self.sender, self.recipient, self.body,
                          self.issued_at, self.expires_at, self.sequence)


def _canonical(sender: str, recipient: Optional[str], body: bytes,
               issued_at: float, expires_at: Optional[float],
               sequence: int) -> bytes:
    return digest_many([
        b"repro/envelope/v1",
        sender.encode(),
        (recipient or "\x00broadcast").encode(),
        body,
        repr(issued_at).encode(),
        repr(expires_at).encode(),
        sequence.to_bytes(8, "big"),
    ])


def seal(signer: SchnorrSigner, sender: str, body: bytes,
         issued_at: float, recipient: Optional[str] = None,
         expires_at: Optional[float] = None, sequence: int = 0,
         rng: Optional[_random.Random] = None) -> MessageEnvelope:
    """Create and sign an envelope."""
    payload = _canonical(sender, recipient, body, issued_at, expires_at,
                         sequence)
    return MessageEnvelope(
        sender=sender, recipient=recipient, body=body, issued_at=issued_at,
        expires_at=expires_at, sequence=sequence,
        signature=signer.sign(payload, rng=rng))


def open_envelope(envelope: MessageEnvelope, sender_key: SchnorrPublicKey,
                  expected_recipient: Optional[str] = None,
                  now: Optional[float] = None) -> bytes:
    """Verify every integrity aspect and return the body.

    Raises :class:`IntegrityError` naming the violated aspect:

    * owner/content integrity — signature check against ``sender_key``
      (covers both "is it Bob?" and "did the content change?");
    * relation integrity — ``expected_recipient`` must match the envelope's
      recipient binding;
    * historical integrity (freshness) — ``now`` past ``expires_at``.
    """
    if not sender_key.verify(envelope.canonical_bytes(), envelope.signature):
        raise IntegrityError(
            "owner/content integrity violated: signature does not verify "
            f"under {envelope.sender!r}'s key")
    if expected_recipient is not None \
            and envelope.recipient != expected_recipient:
        raise IntegrityError(
            "relation integrity violated: envelope addressed to "
            f"{envelope.recipient!r}, not {expected_recipient!r}")
    if now is not None and envelope.expires_at is not None \
            and now > envelope.expires_at:
        raise IntegrityError(
            f"historical integrity violated: expired at "
            f"{envelope.expires_at}, now {now}")
    return envelope.body


def tampered_with(envelope: MessageEnvelope,
                  sender_key: SchnorrPublicKey) -> bool:
    """Pure predicate: does the signature fail (any field modified)?"""
    return not sender_key.verify(envelope.canonical_bytes(),
                                 envelope.signature)
