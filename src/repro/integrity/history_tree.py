"""Object history trees with fork-consistency detection (Frientegrity).

Section IV-B of the paper: "Fork-consistent systems can be used for ensuring
historical integrity.  [Frientegrity] proposed object history tree
accompanied by a fork-consistency approach ... a malicious service provider
or any data storage utility cannot present different clients with divergent
views of the system's state ... Clients share information about their
individual views of the history by embedding it in every operation they
perform.  As a result, if the clients who have been equivocated by the
service provider communicate to each other, they will discover the
provider's misbehaviour.  In this method, the service provider also
digitally signs the root of object history tree in order to prevent the
client from later falsely accusing the server of cheating."

Pieces:

* :class:`ObjectHistory` — the per-object operation log, Merkle-rooted so
  membership of any operation is provable in O(log n) (experiment E4
  compares this against shipping the full log).
* :class:`HistoryServer` — an honest provider: appends ops, returns
  *signed* version/root pairs.
* :class:`ForkingServer` — a malicious provider maintaining divergent
  views for disjoint client sets (the equivocation attack).
* :class:`FortClient` — embeds its current (version, root) view in every
  operation and cross-checks every other client's embedded view it sees;
  :meth:`FortClient.sync` raises :class:`IntegrityError` carrying the two
  *signed* contradictory roots — a non-repudiable proof of misbehaviour.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.hashing import digest_many
from repro.crypto.signatures import SchnorrPublicKey, SchnorrSigner
from repro.exceptions import IntegrityError


@dataclass(frozen=True)
class Operation:
    """One client operation, carrying the client's embedded view."""

    client: str
    payload: bytes
    seen_version: int
    seen_root: bytes

    def encode(self) -> bytes:
        """Canonical leaf encoding for the history tree."""
        return digest_many([
            self.client.encode(), self.payload,
            self.seen_version.to_bytes(8, "big"), self.seen_root,
        ])


@dataclass(frozen=True)
class SignedRoot:
    """A provider-signed (object, version, root) commitment."""

    object_id: str
    version: int
    root: bytes
    signature: Tuple[int, int]

    def signed_bytes(self) -> bytes:
        return digest_many([
            b"repro/history/root", self.object_id.encode(),
            self.version.to_bytes(8, "big"), self.root,
        ])


class ObjectHistory:
    """A Merkle-rooted append-only operation log for one object."""

    def __init__(self, object_id: str) -> None:
        self.object_id = object_id
        self._tree = MerkleTree()
        self.operations: List[Operation] = []

    @property
    def version(self) -> int:
        """Number of operations applied."""
        return len(self.operations)

    @property
    def root(self) -> bytes:
        """Current history-tree root."""
        return self._tree.root()

    def append(self, op: Operation) -> int:
        """Apply one operation; returns the new version."""
        self.operations.append(op)
        self._tree.append(op.encode())
        return self.version

    def root_at(self, version: int) -> bytes:
        """Recompute the root as of an earlier version (for view checks)."""
        if not 0 <= version <= self.version:
            raise IntegrityError(f"no version {version}")
        return MerkleTree([op.encode()
                           for op in self.operations[:version]]).root()

    def prove_operation(self, index: int) -> MerkleProof:
        """O(log n) membership proof for the op at ``index``."""
        return self._tree.prove(index)


class HistoryServer:
    """An honest provider hosting many object histories."""

    def __init__(self, signer: SchnorrSigner,
                 rng: Optional[_random.Random] = None) -> None:
        self._signer = signer
        self._rng = rng or _random.Random(0xF0C)
        self.histories: Dict[str, ObjectHistory] = {}

    @property
    def public_key(self) -> SchnorrPublicKey:
        """The provider's root-signing key (pinned by clients)."""
        return self._signer.public_key

    def _history(self, object_id: str) -> ObjectHistory:
        return self.histories.setdefault(object_id, ObjectHistory(object_id))

    def _sign_root(self, history: ObjectHistory) -> SignedRoot:
        unsigned = SignedRoot(object_id=history.object_id,
                              version=history.version, root=history.root,
                              signature=(0, 0))
        return SignedRoot(object_id=unsigned.object_id,
                          version=unsigned.version, root=unsigned.root,
                          signature=self._signer.sign(unsigned.signed_bytes(),
                                                      rng=self._rng))

    def submit(self, object_id: str, op: Operation) -> SignedRoot:
        """Append a client operation; returns the fresh signed root."""
        history = self._history(object_id)
        history.append(op)
        return self._sign_root(history)

    def fetch(self, object_id: str, since_version: int
              ) -> Tuple[List[Operation], SignedRoot]:
        """Operations after ``since_version`` plus the signed current root."""
        history = self._history(object_id)
        return (history.operations[since_version:], self._sign_root(history))


class ForkingServer(HistoryServer):
    """A malicious provider that equivocates between two client cliques.

    Clients in ``fork_members`` see one history; everyone else sees
    another.  Both are internally consistent and properly signed — the only
    way to catch the fork is cross-client view comparison, which is exactly
    what :class:`FortClient` implements.
    """

    def __init__(self, signer: SchnorrSigner, fork_members: Sequence[str],
                 rng: Optional[_random.Random] = None) -> None:
        super().__init__(signer, rng)
        self._fork_members = set(fork_members)
        self.shadow_histories: Dict[str, ObjectHistory] = {}

    def _history_for(self, object_id: str, client: str) -> ObjectHistory:
        if client in self._fork_members:
            return self.shadow_histories.setdefault(
                object_id, ObjectHistory(object_id))
        return self._history(object_id)

    def submit(self, object_id: str, op: Operation) -> SignedRoot:
        history = self._history_for(object_id, op.client)
        history.append(op)
        return self._sign_root(history)

    def fetch_as(self, object_id: str, client: str, since_version: int
                 ) -> Tuple[List[Operation], SignedRoot]:
        """The forked fetch: which history you get depends on who you are."""
        history = self._history_for(object_id, client)
        return (history.operations[since_version:], self._sign_root(history))


@dataclass
class ForkEvidence:
    """Non-repudiable proof of equivocation: two signed roots that conflict."""

    ours: SignedRoot
    theirs_version: int
    theirs_root: bytes
    description: str


class FortClient:
    """A fork-consistency-enforcing client replica of one object."""

    def __init__(self, name: str, object_id: str,
                 server_key: SchnorrPublicKey) -> None:
        self.name = name
        self.object_id = object_id
        self.server_key = server_key
        self.log: List[Operation] = []
        self.latest_signed: Optional[SignedRoot] = None

    # -- local recomputation --------------------------------------------------

    def _local_root(self, version: Optional[int] = None) -> bytes:
        ops = self.log if version is None else self.log[:version]
        return MerkleTree([op.encode() for op in ops]).root()

    @property
    def version(self) -> int:
        """How many operations this client has verified locally."""
        return len(self.log)

    # -- protocol ----------------------------------------------------------------

    def make_operation(self, payload: bytes) -> Operation:
        """An operation stamped with this client's current view."""
        return Operation(client=self.name, payload=payload,
                         seen_version=self.version,
                         seen_root=self._local_root())

    def _check_signed_root(self, signed: SignedRoot) -> None:
        if signed.object_id != self.object_id:
            raise IntegrityError("signed root for a different object")
        if not self.server_key.verify(signed.signed_bytes(),
                                      signed.signature):
            raise IntegrityError("server root signature invalid")

    def sync(self, new_ops: Sequence[Operation],
             signed: SignedRoot) -> Optional[ForkEvidence]:
        """Verify and absorb a fetch result.

        Checks, in order:

        1. the root signature (so later accusations are provable);
        2. that the server's claimed root matches our locally recomputed
           Merkle root over (our log + new ops) — catches suppressed or
           injected operations;
        3. every embedded ``(seen_version, seen_root)`` of other clients
           against *our* history at that version — catches forks the moment
           an op from the other side of the fork becomes visible.

        Returns :class:`ForkEvidence` (and leaves local state untouched)
        when equivocation is proven; raises :class:`IntegrityError` for
        non-equivocation corruption.
        """
        self._check_signed_root(signed)
        candidate_log = self.log + list(new_ops)
        candidate_root = MerkleTree(
            [op.encode() for op in candidate_log]).root()
        if signed.version != len(candidate_log) \
                or signed.root != candidate_root:
            return ForkEvidence(
                ours=signed, theirs_version=len(candidate_log),
                theirs_root=candidate_root,
                description=(
                    f"server-signed root at version {signed.version} does "
                    "not match the log it shipped"))
        for op in new_ops:
            if op.seen_version > len(candidate_log):
                return ForkEvidence(
                    ours=signed, theirs_version=op.seen_version,
                    theirs_root=op.seen_root,
                    description=(
                        f"{op.client!r} embeds a view from the future of "
                        "this history — we are on the short side of a fork"))
            expected = MerkleTree(
                [o.encode()
                 for o in candidate_log[:op.seen_version]]).root()
            if op.seen_root != expected:
                return ForkEvidence(
                    ours=signed, theirs_version=op.seen_version,
                    theirs_root=op.seen_root,
                    description=(
                        f"{op.client!r}'s embedded view at version "
                        f"{op.seen_version} diverges from ours — the "
                        "provider equivocated"))
        self.log = candidate_log
        self.latest_signed = signed
        return None

    def compare_views(self, other: "FortClient") -> Optional[ForkEvidence]:
        """Direct client-to-client view exchange (out-of-band fork check)."""
        if self.latest_signed is None or other.latest_signed is None:
            return None
        common = min(self.version, other.version)
        ours = self._local_root(common)
        theirs = other._local_root(common)
        if ours != theirs:
            return ForkEvidence(
                ours=self.latest_signed, theirs_version=common,
                theirs_root=theirs,
                description=(
                    f"{self.name!r} and {other.name!r} hold divergent "
                    f"histories at common version {common}"))
        return None
