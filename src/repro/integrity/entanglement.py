"""Cross-timeline entanglement: provable order *between* users.

Section IV-B of the paper: "Another solution is to establish a dependency
between the timelines of different publishers.  In this solution, the
publisher adds the hashes of prior events from other participants alongside
using the digital signature.  In this way, a provable order between their
messages will be established."

A :class:`EntanglementGraph` ingests verified timelines and exposes the
happened-before relation induced by (a) each author's own chain order and
(b) citations of other authors' entry hashes.  Citations are only trusted
after :meth:`verify_citations` confirms the cited hash matches the actual
entry — a forged citation is a detectable integrity violation, not an edge.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.integrity.hashchain import ChainEntry
from repro.exceptions import IntegrityError

#: An entry is identified by (author, sequence).
EntryRef = Tuple[str, int]


class EntanglementGraph:
    """The happened-before DAG over entries of many timelines."""

    def __init__(self) -> None:
        self._entries: Dict[EntryRef, ChainEntry] = {}
        #: ref -> set of refs known to have happened strictly before it
        self._parents: Dict[EntryRef, Set[EntryRef]] = {}

    def add_timeline(self, entries: Sequence[ChainEntry]) -> None:
        """Ingest one author's (already signature-verified) timeline."""
        for entry in entries:
            ref = (entry.author, entry.sequence)
            self._entries[ref] = entry
            parents: Set[EntryRef] = set()
            if entry.sequence > 0:
                parents.add((entry.author, entry.sequence - 1))
            self._parents[ref] = parents

    def verify_citations(self) -> List[str]:
        """Validate every citation; returns violation descriptions.

        A valid citation — cited entry known and its hash matching — adds a
        happened-before edge.  Invalid citations (unknown entry or hash
        mismatch, i.e. a forged dependency) are reported, never edged.
        """
        violations: List[str] = []
        for ref, entry in self._entries.items():
            for cited_author, cited_seq, cited_hash in entry.citations:
                cited_ref = (cited_author, cited_seq)
                cited = self._entries.get(cited_ref)
                if cited is None:
                    violations.append(
                        f"{ref} cites unknown entry {cited_ref}")
                    continue
                if cited.entry_hash() != cited_hash:
                    violations.append(
                        f"{ref} cites {cited_ref} with a forged hash")
                    continue
                self._parents[ref].add(cited_ref)
        return violations

    def happened_before(self, earlier: EntryRef, later: EntryRef) -> bool:
        """Is there a provable dependency chain from ``earlier`` to ``later``?

        BFS over the parent relation from ``later``; same-author entries are
        ordered by their chain, cross-author entries only via verified
        citations — entries with no connecting path are *concurrent*, which
        is exactly the "partial" in provable partial order.
        """
        if earlier not in self._entries or later not in self._entries:
            raise IntegrityError(f"unknown entry in query: {earlier}, {later}")
        seen: Set[EntryRef] = set()
        queue = deque([later])
        while queue:
            current = queue.popleft()
            for parent in self._parents.get(current, ()):
                if parent == earlier:
                    return True
                if parent not in seen:
                    seen.add(parent)
                    queue.append(parent)
        return False

    def concurrent(self, a: EntryRef, b: EntryRef) -> bool:
        """Neither provably precedes the other."""
        return not self.happened_before(a, b) \
            and not self.happened_before(b, a)

    def ancestors(self, ref: EntryRef) -> Set[EntryRef]:
        """All entries provably before ``ref``."""
        seen: Set[EntryRef] = set()
        queue = deque([ref])
        while queue:
            for parent in self._parents.get(queue.popleft(), ()):
                if parent not in seen:
                    seen.add(parent)
                    queue.append(parent)
        return seen


def cite(entry: ChainEntry) -> Tuple[str, int, bytes]:
    """Build a citation tuple for inclusion in another author's entry."""
    return (entry.author, entry.sequence, entry.entry_hash())
