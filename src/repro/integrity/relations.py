"""Integrity of data relations: binding comments to posts (Cachet).

Section IV-C of the paper: "To guarantee the links between two entities in
the system, for example a post and corresponding comments, one solution is
to embed a proper signing key for signing the comments of that post.  The
signing key is encrypted in a way that only authorized users can decrypt
and use it for posting a comment to that particular post.  Corresponding
verification key is also located in the content of the post ... Each post
will contain a different signature key, which enables a different sub-group
of the users to write a comment for different posts."

:class:`CommentablePost` carries a per-post Schnorr verification key in the
clear and the matching signing key wrapped (AEAD) for each authorized
commenter.  :func:`verify_comment` checks both relations the paper lists:
the comment belongs to *this* post (signature under the post's embedded
key, over a payload that includes the post id and hash) and the commenter
was privileged (only key-holders can produce such a signature).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.crypto.groups import group_for_level
from repro.crypto.hashing import digest, digest_many
from repro.crypto.signatures import (SchnorrPublicKey, SchnorrSigner,
                                     generate_schnorr_keypair)
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import AccessDeniedError, IntegrityError

_DEFAULT_RNG = _random.Random(0xC0117)


@dataclass(frozen=True)
class Comment:
    """A signed comment bound to one post."""

    post_id: str
    post_hash: bytes
    commenter: str
    body: bytes
    signature: Tuple[int, int]

    def signed_bytes(self) -> bytes:
        return digest_many([
            b"repro/relations/comment", self.post_id.encode(),
            self.post_hash, self.commenter.encode(), self.body,
        ])


@dataclass
class CommentablePost:
    """A post carrying its own comment-key infrastructure.

    ``comment_verify_key`` rides in the clear inside the post; the signing
    exponent is wrapped once per authorized commenter under their pairwise
    key (in the real Cachet this wrap is the hybrid CP-ABE scheme — the
    composition is exercised by the integration tests).
    """

    post_id: str
    author: str
    body: bytes
    comment_verify_key: SchnorrPublicKey
    wrapped_signing_keys: Dict[str, bytes]
    _level: str = "TOY"

    @property
    def post_hash(self) -> bytes:
        """Content address of the post (what comments bind to)."""
        return digest_many([b"repro/relations/post", self.post_id.encode(),
                            self.author.encode(), self.body])


def create_post(post_id: str, author: str, body: bytes,
                commenter_keys: Dict[str, bytes], level: str = "TOY",
                rng: Optional[_random.Random] = None) -> CommentablePost:
    """Create a post with a fresh per-post comment-signing key.

    ``commenter_keys`` maps each authorized commenter to the symmetric key
    shared with them (the wrap channel).
    """
    rng = rng or _DEFAULT_RNG
    signer = generate_schnorr_keypair(level, rng)
    secret = signer.x.to_bytes(
        (signer.group.q.bit_length() + 7) // 8, "big")
    wrapped = {
        user: AuthenticatedCipher(key).encrypt(secret, rng=rng)
        for user, key in commenter_keys.items()
    }
    return CommentablePost(
        post_id=post_id, author=author, body=body,
        comment_verify_key=signer.public_key,
        wrapped_signing_keys=wrapped, _level=level)


def unwrap_signing_key(post: CommentablePost, user: str,
                       pairwise_key: bytes) -> SchnorrSigner:
    """Recover the per-post signing key as an authorized commenter."""
    blob = post.wrapped_signing_keys.get(user)
    if blob is None:
        raise AccessDeniedError(
            f"{user!r} is not authorized to comment on {post.post_id!r}")
    secret = AuthenticatedCipher(pairwise_key).decrypt(blob)
    group = group_for_level(post._level)
    return SchnorrSigner(group=group, x=int.from_bytes(secret, "big"))


def write_comment(post: CommentablePost, user: str, pairwise_key: bytes,
                  body: bytes,
                  rng: Optional[_random.Random] = None) -> Comment:
    """Produce a comment signed with the post's embedded signing key."""
    signer = unwrap_signing_key(post, user, pairwise_key)
    comment = Comment(post_id=post.post_id, post_hash=post.post_hash,
                      commenter=user, body=body, signature=(0, 0))
    signature = signer.sign(comment.signed_bytes(), rng=rng or _DEFAULT_RNG)
    return Comment(post_id=comment.post_id, post_hash=comment.post_hash,
                   commenter=user, body=body, signature=signature)


def verify_comment(post: CommentablePost, comment: Comment) -> None:
    """Check both data relations; raises :class:`IntegrityError` on failure.

    1. The comment names this post *and* its content hash (a comment moved
       under a different post, or kept after the post was edited, fails).
    2. The signature verifies under the post's embedded verification key
       (only users who could unwrap the signing key can produce it).
    """
    if comment.post_id != post.post_id:
        raise IntegrityError(
            f"comment targets post {comment.post_id!r}, not "
            f"{post.post_id!r}")
    if comment.post_hash != post.post_hash:
        raise IntegrityError(
            "comment is bound to different post content (post edited or "
            "comment transplanted)")
    if not post.comment_verify_key.verify(comment.signed_bytes(),
                                          comment.signature):
        raise IntegrityError(
            "comment signature does not verify under this post's comment "
            "key (commenter was not authorized, or comment was altered)")
