"""Hybrid overlays: DHT base + social caching (Cachet / Cuckoo).

Section II-B of the paper: "As the storage overlay, Cachet uses hybrid
structured-unstructured overlay using a DHT-based approach together with
gossip-based caching to achieve high performance" and "The hybrid control
overlay of Cuckoo uses structured lookup for finding rare items, whereas,
the unstructured lookup helps with the fast discovery of popular items."

:class:`HybridOverlay` composes a :class:`~repro.overlay.chord.ChordRing`
with per-peer social caches: a fetch first polls the requester's social
neighbours (one cheap RPC each, unstructured phase) and falls back to the
DHT lookup (structured phase) on a miss, then caches the result locally so
popularity breeds cache hits.  Experiment E5's "popular vs. rare" series
comes straight from here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import LookupError_, OverlayError, StorageError
from repro.overlay.chord import ChordRing, LookupResult


@dataclass
class HybridFetchResult:
    """Outcome of one hybrid fetch."""

    value: bytes
    source: str          # "cache" (social phase) or "dht"
    rpcs: int
    rtt: float


class _LRUCache:
    """A bounded per-peer content cache."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._items: "OrderedDict[str, bytes]" = OrderedDict()

    def get(self, key: str) -> Optional[bytes]:
        value = self._items.get(key)
        if value is not None:
            self._items.move_to_end(key)
        return value

    def put(self, key: str, value: bytes) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)


class HybridOverlay:
    """Chord storage + social-neighbour caches."""

    def __init__(self, fabric, graph: nx.Graph,
                 cache_capacity: int = 32, probe_limit: int = 5,
                 replication: int = 2) -> None:
        from repro.fabric import coerce_fabric  # avoids an import cycle
        self.fabric = coerce_fabric(fabric, "HybridOverlay")
        self.network = self.fabric.network
        self.graph = graph
        self.probe_limit = probe_limit
        self.ring = ChordRing(self.fabric, replication=replication)
        self.caches: Dict[str, _LRUCache] = {}
        for name in graph.nodes:
            self.ring.add_node(str(name))
            self.caches[str(name)] = _LRUCache(cache_capacity)
        self.ring.build()
        self.cache_hits = 0
        self.dht_fetches = 0

    def neighbors(self, name: str) -> List[str]:
        """Social neighbours of a peer."""
        return [str(n) for n in self.graph.neighbors(name)]

    def publish(self, author: str, key: str, value: bytes) -> LookupResult:
        """Store in the DHT and seed the author's own cache."""
        result = self.ring.put(author, key, value)
        self.caches[author].put(key, value)
        return result

    def fetch(self, reader: str, key: str) -> HybridFetchResult:
        """Unstructured phase (neighbour caches) then structured fallback."""
        if reader not in self.caches:
            raise OverlayError(f"unknown peer {reader!r}")
        own = self.caches[reader].get(key)
        if own is not None:
            self.cache_hits += 1
            return HybridFetchResult(value=own, source="cache", rpcs=0,
                                     rtt=0.0)
        rpcs = 0
        rtt = 0.0
        neighbors = self.neighbors(reader)
        membership = self.fabric.membership
        if membership is not None:
            view = membership.view_of(reader)
            if view is not None:
                # Probe the healthiest neighbours' caches first and do
                # not waste probes on confirmed-dead ones — the DHT
                # fallback covers a false confirmation.
                neighbors = [n for n in membership.order_by_health(
                    reader, neighbors) if not view.is_dead(n)]
        for neighbor in neighbors[:self.probe_limit]:
            ok, t = self.network.rpc(reader, neighbor, kind="hybrid_probe")
            rpcs += 1
            rtt += t
            if not ok:
                continue
            cached = self.caches[neighbor].get(key)
            if cached is not None:
                self.caches[reader].put(key, cached)
                self.cache_hits += 1
                return HybridFetchResult(value=cached, source="cache",
                                         rpcs=rpcs, rtt=rtt)
        try:
            value, lookup = self.ring.get(reader, key)
        except (LookupError_, StorageError):
            raise
        self.caches[reader].put(key, value)
        self.dht_fetches += 1
        return HybridFetchResult(value=value, source="dht",
                                 rpcs=rpcs + lookup.hops,
                                 rtt=rtt + lookup.rtt)

    def cache_hit_rate(self) -> float:
        """Fraction of fetches served from the unstructured phase."""
        total = self.cache_hits + self.dht_fetches
        return self.cache_hits / total if total else 0.0
