"""Simulated message-passing network and peer base class.

Two communication styles, matching how the overlay protocols are written:

* **asynchronous messages** — :meth:`SimNetwork.send` schedules delivery of
  a :class:`Message` to the destination's ``on_<kind>`` handler after a
  latency sample (gossip and churn-driven protocols use this);
* **accounted RPC** — :meth:`SimNetwork.rpc` models a synchronous
  request/response against an online peer: it charges two messages and one
  round trip to the statistics and returns immediately (the iterative DHT
  lookups use this — the classic simulation shortcut that preserves hop and
  message counts without continuation-passing every protocol step).

Every message is counted in :class:`NetworkStats`, which experiments E5-E7
read for their message-cost series.  Failures are additionally recorded
dimensionally (kind × cause × direction) in the attached
:class:`repro.obs.MetricsRegistry`, and every send/RPC opens a span on the
attached tracer (a no-op by default) — see :mod:`repro.obs` and
:class:`repro.fabric.Fabric`.

Beyond the benign i.i.d. loss process, the fabric can carry an installed
:class:`repro.faults.FaultPlan` (see :meth:`SimNetwork.install_faults`):
partitions, correlated loss bursts, slow links, crash/restart, and message
corruption, all deterministic from the simulator seed.  Experiment E12
stresses the overlay protocols through this hook.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import OverlayError, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_TRACER
from repro.overlay.simulator import SimFuture, Simulator, UniformLatency


@dataclass
class Message:
    """An overlay message: a kind tag plus an arbitrary payload dict.

    ``corrupted`` is set by the fault layer when the message was delivered
    but garbled in flight — integrity mechanisms are expected to detect it.
    """

    kind: str
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    corrupted: bool = False

    def size_estimate(self) -> int:
        """Crude byte-size estimate for bandwidth accounting."""
        return 64 + sum(len(str(k)) + len(str(v))
                        for k, v in self.payload.items())


@dataclass
class NetworkStats:
    """Aggregate traffic counters (the legacy, flat view).

    The base counters feed E5-E7; the resilience counters (``retries``,
    ``breaker_trips``, ``breaker_fastfails``, ``hedges``) are incremented
    by :class:`repro.faults.ReliableChannel`, and ``fault_drops`` /
    ``corrupted`` attribute losses to an installed fault plan — E12 reads
    all of them.  The overload counters (``shed``: requests rejected or
    dropped by a full service queue, ``deadline_expired``: operations
    abandoned because their propagated deadline ran out,
    ``budget_exhausted``: retries denied by the channel's token bucket)
    stay zero unless an :class:`repro.faults.OverloadConfig` is
    installed — E18 reads them.  The adversary counters (``misrouted``:
    lookups handed to an accomplice next hop, ``forged_routes``: forged
    owner claims / closest-node sets) stay zero unless an
    :class:`repro.adversary.AdversaryConfig` is installed — E19 reads
    them, and E12b's table proves they stay zero on the legacy path.

    Superseded by the dimensional :class:`repro.obs.MetricsRegistry` on
    :attr:`SimNetwork.metrics` (per-kind, per-cause, per-direction
    counters; histograms); these aggregates remain because they are cheap
    and every existing experiment reads them.  Use
    :meth:`repro.obs.MetricsRegistry.absorb_network` to fold a snapshot of
    them into the registry at export time.
    """

    messages: int = 0
    bytes: int = 0
    drops: int = 0
    timeouts: int = 0
    retries: int = 0
    breaker_trips: int = 0
    breaker_fastfails: int = 0
    hedges: int = 0
    fault_drops: int = 0
    corrupted: int = 0
    shed: int = 0
    deadline_expired: int = 0
    budget_exhausted: int = 0
    misrouted: int = 0
    forged_routes: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        """Zero everything (benchmarks call between phases)."""
        self.messages = 0
        self.bytes = 0
        self.drops = 0
        self.timeouts = 0
        self.retries = 0
        self.breaker_trips = 0
        self.breaker_fastfails = 0
        self.hedges = 0
        self.fault_drops = 0
        self.corrupted = 0
        self.shed = 0
        self.deadline_expired = 0
        self.budget_exhausted = 0
        self.misrouted = 0
        self.forged_routes = 0
        self.by_kind.clear()

    def summary(self) -> Dict[str, int]:
        """Flat roll-up with *every* RPC failure cause accounted.

        ``failures`` covers both failure modes an RPC caller observes:
        timeouts (lost request/response, offline or partitioned peer)
        **and** corrupted responses — the corruption branch of
        :meth:`SimNetwork._rpc_inner` returns a failure without touching
        ``timeouts``, so summing only timeouts under-counts.  E12 reads
        this so its resilience tables balance against injected faults.
        """
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "drops": self.drops,
            "timeouts": self.timeouts,
            "corrupted": self.corrupted,
            "failures": self.timeouts + self.corrupted,
            "retries": self.retries,
            "breaker_trips": self.breaker_trips,
            "breaker_fastfails": self.breaker_fastfails,
            "hedges": self.hedges,
            "fault_drops": self.fault_drops,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "budget_exhausted": self.budget_exhausted,
            "misrouted": self.misrouted,
            "forged_routes": self.forged_routes,
        }


class SimNode:
    """Base class for simulated peers.

    Subclasses implement ``on_<kind>(message)`` handlers for async traffic.
    ``online`` gates both delivery and RPC reachability — churn models flip
    it via :meth:`go_online` / :meth:`go_offline`.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.online = True
        self.network: Optional["SimNetwork"] = None

    def attach(self, network: "SimNetwork") -> None:
        """Called by the network on registration."""
        self.network = network

    def go_online(self) -> None:
        """Bring the peer up (hook for subclasses to re-sync state)."""
        self.online = True

    def go_offline(self) -> None:
        """Take the peer down; in-flight messages to it will be dropped."""
        self.online = False

    def crash(self, lose_state: bool = True) -> None:
        """Fail the peer; with ``lose_state`` its volatile state is wiped.

        Used by :class:`repro.faults.Crash`.  Unlike a churn departure,
        a crashed-and-restarted peer comes back *empty* — recovering its
        data is the replication layer's job.
        """
        if lose_state:
            self.wipe_state()
        self.go_offline()

    def wipe_state(self) -> None:
        """Drop volatile state on crash.

        The default clears the conventional ``store`` dict the DHT nodes
        keep; subclasses with more state should extend this.
        """
        store = getattr(self, "store", None)
        if isinstance(store, dict):
            store.clear()

    def handle_message(self, message: Message) -> None:
        """Dispatch to ``on_<kind>``; unknown kinds raise."""
        handler = getattr(self, f"on_{message.kind}", None)
        if handler is None:
            raise OverlayError(
                f"{type(self).__name__} has no handler for "
                f"{message.kind!r}")
        handler(message)


class SimNetwork:
    """The message fabric connecting :class:`SimNode` peers."""

    def __init__(self, sim: Simulator, latency: Optional[Any] = None,
                 loss_rate: float = 0.0, faults: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency or UniformLatency()
        self.loss_rate = loss_rate
        self.nodes: Dict[str, SimNode] = {}
        self.stats = NetworkStats()
        #: observability: a no-op tracer and a fresh registry by default;
        #: :class:`repro.fabric.Fabric` injects shared instances.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rng = sim.split_rng("network")
        self.faults = None
        #: per-peer service model (None = fair-weather: RPCs are free for
        #: the server) — see :meth:`install_overload`
        self.service = None
        self._adaptive = None
        #: absolute virtual time until which each peer's queue is busy
        self._busy_until: Dict[str, float] = {}
        #: deepest backlog ever observed per destination (jobs waiting)
        self.queue_peak: Dict[str, int] = {}
        if faults is not None:
            self.install_faults(faults)

    def install_faults(self, plan: Any) -> None:
        """Attach a :class:`repro.faults.FaultPlan` to the fabric.

        Binding materializes the plan's burst schedules from its seed and
        registers crash/restart events on the simulator.
        """
        if self.faults is not None:
            raise SimulationError("a fault plan is already installed")
        plan.bind(self)
        self.faults = plan

    def install_overload(self, config: Optional[Any]) -> None:
        """Attach an :class:`repro.faults.OverloadConfig` service model.

        With a :class:`~repro.faults.ServiceConfig` installed every RPC
        destination processes one request per ``service_time`` and keeps
        a bounded FIFO backlog; :meth:`rpc_issue` charges the queueing
        delay on top of wire latency, and a full queue sheds.  With an
        adaptive-timeout config, successful RTTs per destination feed an
        EWMA that replaces the fixed attempt timeout.  ``None`` is a
        no-op: no service state exists and every draw, span, and counter
        stays byte-identical to the fair-weather fabric.
        """
        if config is None:
            return
        if self.service is not None:
            raise SimulationError("an overload config is already installed")
        self.service = config.service
        if config.adaptive_timeout is not None:
            from repro.faults.overload import AdaptiveTimeout
            self._adaptive = AdaptiveTimeout(config.adaptive_timeout)

    def queue_depth(self, dst: str, now: Optional[float] = None) -> int:
        """Jobs currently queued or in service at ``dst`` (0 when idle)."""
        if self.service is None:
            return 0
        backlog = self._busy_until.get(dst, 0.0) - \
            (self.sim.now if now is None else now)
        if backlog <= 0:
            return 0
        return max(1, round(backlog / self.service.service_time))

    def register(self, node: SimNode) -> None:
        """Add a peer to the fabric."""
        if node.node_id in self.nodes:
            raise OverlayError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        node.attach(self)

    def node(self, node_id: str) -> SimNode:
        """Look up a registered peer."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise OverlayError(f"unknown node {node_id!r}")

    def is_online(self, node_id: str) -> bool:
        """Whether the peer exists and is currently up."""
        node = self.nodes.get(node_id)
        return node is not None and node.online

    # -- fault-aware draws ------------------------------------------------------

    def _loss_cause(self, a: str, b: str, t: float) -> Optional[str]:
        """One direction's loss draw: None, 'loss' (base), or 'fault'."""
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return "loss"
        if self.faults is not None:
            rate = self.faults.loss_rate(a, b, t)
            if rate > 0 and self._rng.random() < rate:
                return "fault"
        return None

    def _latency_factor(self, a: str, b: str, t: float) -> float:
        if self.faults is None:
            return 1.0
        return self.faults.latency_factor(a, b, t)

    def _corrupts(self, a: str, b: str, t: float) -> bool:
        if self.faults is None:
            return False
        rate = self.faults.corruption_rate(a, b, t)
        return rate > 0 and self._rng.random() < rate

    # -- asynchronous messaging ------------------------------------------------

    def send(self, message: Message) -> None:
        """Queue delivery of ``message`` after a latency sample.

        Messages to offline/unknown peers or lost to the loss process are
        counted as drops; the sender is not notified (UDP semantics — the
        protocols on top implement their own retries where they need them).
        Partition-blocked and burst-lost messages additionally count as
        ``fault_drops``; corrupted ones are delivered flagged.

        Each drop is also recorded dimensionally in :attr:`metrics` as
        ``net.send_drops{kind=..., cause=...}``.
        """
        self.stats.messages += 1
        self.stats.bytes += message.size_estimate()
        self.stats.by_kind[message.kind] += 1
        now = self.sim.now
        with self.tracer.span("net.send", kind=message.kind,
                              src=message.src, dst=message.dst) as span:
            if self.faults is not None \
                    and self.faults.blocks(message.src, message.dst, now):
                self.stats.drops += 1
                self.stats.fault_drops += 1
                self.metrics.inc("net.send_drops", kind=message.kind,
                                 cause="partition")
                span.set_attr("dropped", "partition")
                return
            cause = self._loss_cause(message.src, message.dst, now)
            if cause is not None:
                self.stats.drops += 1
                if cause == "fault":
                    self.stats.fault_drops += 1
                self.metrics.inc("net.send_drops", kind=message.kind,
                                 cause=cause)
                span.set_attr("dropped", cause)
                return
            if self._corrupts(message.src, message.dst, now):
                message.corrupted = True
                self.stats.corrupted += 1
                self.metrics.inc("net.corrupted", kind=message.kind)
            delay = self.latency.sample(self._rng, message.src, message.dst) \
                * self._latency_factor(message.src, message.dst, now)
            span.add_cost(delay)
            parent_id = self.tracer.current_id

            def deliver() -> None:
                with self.tracer.span("net.deliver", parent=parent_id,
                                      kind=message.kind,
                                      dst=message.dst) as dspan:
                    node = self.nodes.get(message.dst)
                    if node is None or not node.online:
                        self.stats.drops += 1
                        self.metrics.inc("net.send_drops", kind=message.kind,
                                         cause="offline")
                        dspan.set_attr("dropped", "offline")
                        return
                    node.handle_message(message)

            self.sim.schedule(delay, deliver)

    # -- accounted synchronous RPC ------------------------------------------------

    def rpc_issue(self, src: str, dst: str, kind: str = "rpc",
                  payload_size: int = 64) -> SimFuture:
        """Issue one RPC and return its completion token.

        Every RNG draw (latency samples, loss causes, corruption) happens
        *now*, in issue order — exactly the draws the blocking
        :meth:`rpc` made, in the same order — so issuing a batch of RPCs
        and combining their futures consumes the identical random stream
        a sequential loop would.  The returned :class:`SimFuture` carries
        ``value=(ok, rtt)``, ``ok``, and ``latency=rtt``; feed batches of
        them to :func:`repro.overlay.simulator.quorum_of` /
        :func:`~repro.overlay.simulator.gather` to account the fan-out's
        critical path instead of the sum.

        Span and statistics behaviour is unchanged from :meth:`rpc`: the
        ``net.rpc`` span closes immediately carrying the RTT as cost (a
        parallel parent span turns the sum into a max — see
        :class:`repro.obs.trace.Span`).
        """
        self.stats.by_kind[kind] += 1
        with self.tracer.span("net.rpc", kind=kind, src=src,
                              dst=dst) as span:
            ok, rtt, cause = self._rpc_inner(src, dst, kind, payload_size,
                                             span)
            span.set_attr("ok", ok)
            span.add_cost(rtt)
        return self.sim.future(rtt, value=(ok, rtt), ok=ok, cause=cause)

    def rpc(self, src: str, dst: str, kind: str = "rpc",
            payload_size: int = 64) -> Tuple[bool, float]:
        """Model one request/response round trip.

        A blocking wrapper over :meth:`rpc_issue` — the draws, spans and
        statistics are byte-identical to the pre-split implementation.

        Returns ``(reachable, rtt)``.  The two directions draw loss
        independently so the accounting matches the fault model: a lost
        *request* (or an offline/partitioned destination) costs one message
        plus a timeout — failed probes are not free, matching how real
        iterative lookups pay for dead fingers — while a lost *response*
        costs both messages (the request was delivered) plus the timeout.
        A corrupted response is delivered but useless, so it also reads as
        a failure.

        Every failure is recorded dimensionally in :attr:`metrics` as
        ``net.rpc_failures{kind=..., cause=..., direction=...}`` — the
        aggregate ``fault_drops`` counter cannot tell a lost request from
        a lost response, the labelled counters can.
        """
        return self.rpc_issue(src, dst, kind, payload_size).value

    def _timeout_cost(self, dst: str, out: float) -> float:
        """What one abandoned attempt against ``dst`` costs the caller.

        Cascade: the adaptive per-destination EWMA estimate when one
        exists, else the fixed :attr:`ServiceConfig.timeout` when a
        service model is installed, else the legacy ``4 * out``
        heuristic — so with ``overload=None`` every timeout is priced
        exactly as before.
        """
        if self._adaptive is not None:
            adaptive = self._adaptive.timeout_for(dst)
            if adaptive is not None:
                return adaptive
        if self.service is not None:
            return self.service.timeout
        return 4 * out  # timeout ~ a few RTTs

    def _enqueue(self, dst: str, arrival: float) -> Tuple[bool, float]:
        """Admit one request to ``dst``'s service queue at ``arrival``.

        Returns ``(accepted, queue_wait)`` where ``queue_wait`` includes
        the request's own service time.  The queue is a per-destination
        ``busy_until`` horizon on the virtual clock: backlog drains by
        the mere passage of virtual time, and depth is the backlog
        divided by the service time.  Rejection is deterministic — no
        RNG draw — so installing a service model never perturbs the
        fault layer's random streams.
        """
        service = self.service
        busy = max(self._busy_until.get(dst, arrival), arrival)
        depth = round((busy - arrival) / service.service_time)
        if depth > self.queue_peak.get(dst, -1):
            self.queue_peak[dst] = depth
            self.metrics.gauge("overload.queue_depth", dst=dst).set(depth)
        if service.queue_limit is not None and depth >= service.queue_limit:
            return (False, 0.0)
        self._busy_until[dst] = busy + service.service_time
        return (True, (busy - arrival) + service.service_time)

    def _rpc_inner(self, src: str, dst: str, kind: str, payload_size: int,
                   span: Any) -> Tuple[bool, float, Optional[str]]:
        now = self.sim.now
        factor = self._latency_factor(src, dst, now)
        out = self.latency.sample(self._rng, src, dst) * factor
        blocked = self.faults is not None \
            and self.faults.blocks(src, dst, now)
        reachable = not blocked and self.is_online(dst)
        request_lost = self._loss_cause(src, dst, now) if reachable else None
        if not reachable or request_lost is not None:
            self.stats.messages += 1
            self.stats.bytes += payload_size
            self.stats.timeouts += 1
            if blocked or request_lost == "fault":
                self.stats.fault_drops += 1
            cause = "partition" if blocked else (
                "offline" if not reachable else request_lost)
            self.metrics.inc("net.rpc_failures", kind=kind, cause=cause,
                             direction="request")
            span.set_attr("failed", f"request/{cause}")
            return (False, self._timeout_cost(dst, out), cause)
        back = self.latency.sample(self._rng, dst, src) * factor
        queue_wait = 0.0
        if self.service is not None:
            # the request reached dst: admission to its service queue
            accepted, queue_wait = self._enqueue(dst, now + out)
            if not accepted:
                self.stats.shed += 1
                self.metrics.inc("overload.sheds", kind=kind, dst=dst,
                                 policy=self.service.shed_policy)
                span.set_attr("failed", "overloaded")
                if self.service.shed_policy == "reject":
                    # a typed rejection rides back: two messages, one
                    # round trip — the cheap failure shedding buys
                    self.stats.messages += 2
                    self.stats.bytes += payload_size + 64
                    return (False, out + back, "overloaded")
                # "drop": silently discarded; the caller waits out the
                # attempt timeout, exactly like an unprotected peer
                self.stats.messages += 1
                self.stats.bytes += payload_size
                self.stats.timeouts += 1
                return (False, self._timeout_cost(dst, out), "overloaded")
        self.stats.messages += 2
        self.stats.bytes += 2 * payload_size
        response_lost = self._loss_cause(dst, src, now)
        if response_lost is not None:
            self.stats.timeouts += 1
            if response_lost == "fault":
                self.stats.fault_drops += 1
            self.metrics.inc("net.rpc_failures", kind=kind,
                             cause=response_lost, direction="response")
            span.set_attr("failed", f"response/{response_lost}")
            return (False, self._timeout_cost(dst, out), response_lost)
        if self._corrupts(dst, src, now):
            self.stats.corrupted += 1
            self.metrics.inc("net.rpc_failures", kind=kind,
                             cause="corruption", direction="response")
            span.set_attr("failed", "response/corruption")
            return (False, out + back + queue_wait, "corruption")
        rtt = out + queue_wait + back
        if self.service is not None:
            timeout = self._timeout_cost(dst, out)
            if rtt > timeout:
                # the answer is coming, but later than the client waits:
                # it reads as a timeout while dst's service time is
                # already spent — the wasted work that feeds metastable
                # collapse.
                self.stats.timeouts += 1
                self.metrics.inc("net.rpc_failures", kind=kind,
                                 cause="slow", direction="response")
                span.set_attr("failed", "response/slow")
                return (False, timeout, "slow")
            if self._adaptive is not None:
                self._adaptive.observe(dst, rtt)
        return (True, rtt, None)
