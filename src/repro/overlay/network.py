"""Simulated message-passing network and peer base class.

Two communication styles, matching how the overlay protocols are written:

* **asynchronous messages** — :meth:`SimNetwork.send` schedules delivery of
  a :class:`Message` to the destination's ``on_<kind>`` handler after a
  latency sample (gossip and churn-driven protocols use this);
* **accounted RPC** — :meth:`SimNetwork.rpc` models a synchronous
  request/response against an online peer: it charges two messages and one
  round trip to the statistics and returns immediately (the iterative DHT
  lookups use this — the classic simulation shortcut that preserves hop and
  message counts without continuation-passing every protocol step).

Every message is counted in :class:`NetworkStats`, which experiments E5-E7
read for their message-cost series.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import OverlayError, SimulationError
from repro.overlay.simulator import Simulator, UniformLatency


@dataclass
class Message:
    """An overlay message: a kind tag plus an arbitrary payload dict."""

    kind: str
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def size_estimate(self) -> int:
        """Crude byte-size estimate for bandwidth accounting."""
        return 64 + sum(len(str(k)) + len(str(v))
                        for k, v in self.payload.items())


@dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    messages: int = 0
    bytes: int = 0
    drops: int = 0
    timeouts: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        """Zero everything (benchmarks call between phases)."""
        self.messages = 0
        self.bytes = 0
        self.drops = 0
        self.timeouts = 0
        self.by_kind.clear()


class SimNode:
    """Base class for simulated peers.

    Subclasses implement ``on_<kind>(message)`` handlers for async traffic.
    ``online`` gates both delivery and RPC reachability — churn models flip
    it via :meth:`go_online` / :meth:`go_offline`.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.online = True
        self.network: Optional["SimNetwork"] = None

    def attach(self, network: "SimNetwork") -> None:
        """Called by the network on registration."""
        self.network = network

    def go_online(self) -> None:
        """Bring the peer up (hook for subclasses to re-sync state)."""
        self.online = True

    def go_offline(self) -> None:
        """Take the peer down; in-flight messages to it will be dropped."""
        self.online = False

    def handle_message(self, message: Message) -> None:
        """Dispatch to ``on_<kind>``; unknown kinds raise."""
        handler = getattr(self, f"on_{message.kind}", None)
        if handler is None:
            raise OverlayError(
                f"{type(self).__name__} has no handler for "
                f"{message.kind!r}")
        handler(message)


class SimNetwork:
    """The message fabric connecting :class:`SimNode` peers."""

    def __init__(self, sim: Simulator, latency: Optional[Any] = None,
                 loss_rate: float = 0.0) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency or UniformLatency()
        self.loss_rate = loss_rate
        self.nodes: Dict[str, SimNode] = {}
        self.stats = NetworkStats()
        self._rng = sim.split_rng("network")

    def register(self, node: SimNode) -> None:
        """Add a peer to the fabric."""
        if node.node_id in self.nodes:
            raise OverlayError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        node.attach(self)

    def node(self, node_id: str) -> SimNode:
        """Look up a registered peer."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise OverlayError(f"unknown node {node_id!r}")

    def is_online(self, node_id: str) -> bool:
        """Whether the peer exists and is currently up."""
        node = self.nodes.get(node_id)
        return node is not None and node.online

    # -- asynchronous messaging ------------------------------------------------

    def send(self, message: Message) -> None:
        """Queue delivery of ``message`` after a latency sample.

        Messages to offline/unknown peers or lost to the loss process are
        counted as drops; the sender is not notified (UDP semantics — the
        protocols on top implement their own retries where they need them).
        """
        self.stats.messages += 1
        self.stats.bytes += message.size_estimate()
        self.stats.by_kind[message.kind] += 1
        if self._rng.random() < self.loss_rate:
            self.stats.drops += 1
            return
        delay = self.latency.sample(self._rng, message.src, message.dst)

        def deliver() -> None:
            node = self.nodes.get(message.dst)
            if node is None or not node.online:
                self.stats.drops += 1
                return
            node.handle_message(message)

        self.sim.schedule(delay, deliver)

    # -- accounted synchronous RPC ------------------------------------------------

    def rpc(self, src: str, dst: str, kind: str = "rpc",
            payload_size: int = 64) -> Tuple[bool, float]:
        """Model one request/response round trip.

        Returns ``(reachable, rtt)``.  An offline destination costs the
        request message plus a timeout (charged as latency at the high end)
        so failed probes are not free — matching how real iterative lookups
        pay for dead fingers.
        """
        self.stats.by_kind[kind] += 1
        out = self.latency.sample(self._rng, src, dst)
        if not self.is_online(dst) or self._rng.random() < self.loss_rate:
            self.stats.messages += 1
            self.stats.bytes += payload_size
            self.stats.timeouts += 1
            return (False, 4 * out)  # timeout ~ a few RTTs
        back = self.latency.sample(self._rng, dst, src)
        self.stats.messages += 2
        self.stats.bytes += 2 * payload_size
        return (True, out + back)
