"""Replica placement and availability measurement.

Sections I-II of the paper: "replication and caching are proven techniques
to ensure availability" — and the paper's core security observation: "The
replica nodes are indeed another kind of service provider in a small scale
and with a local view."  This module provides both halves:

* placement policies (random / friends / uptime-aware, the latter being
  Supernova's "track users' up-time to find the best places");
* :func:`measure_availability` — the fraction of probe times at which at
  least one replica (or the owner) is online under a churn model
  (experiment E6's y-axis);
* :class:`ReplicaExposure` — what each *replica holder* gets to observe,
  quantifying the "many small providers" claim for experiment E8.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.exceptions import OverlayError, ReplicaIntegrityError


@dataclass
class Placement:
    """A replica assignment: owner plus chosen replica holders."""

    owner: str
    replicas: List[str]

    @property
    def holders(self) -> List[str]:
        """Owner + replicas (everyone who can serve the content)."""
        return [self.owner] + self.replicas


def place_random(owner: str, peers: Sequence[str], count: int,
                 rng: _random.Random) -> Placement:
    """Uniformly random replica holders (DHT-successor-like placement)."""
    candidates = [p for p in peers if p != owner]
    if count > len(candidates):
        raise OverlayError(
            f"cannot place {count} replicas among {len(candidates)} peers")
    return Placement(owner=owner, replicas=rng.sample(candidates, count))


def place_friends(owner: str, graph: nx.Graph, count: int,
                  rng: _random.Random) -> Placement:
    """Replicas on social neighbours (friends-first; friends-of-friends
    fill the remainder when the friend list is short)."""
    friends = [str(n) for n in graph.neighbors(owner)]
    rng.shuffle(friends)
    chosen = friends[:count]
    if len(chosen) < count:
        second_ring: Set[str] = set()
        for friend in friends:
            second_ring.update(str(n) for n in graph.neighbors(friend))
        second_ring.discard(owner)
        second_ring.difference_update(chosen)
        extra = sorted(second_ring)
        rng.shuffle(extra)
        chosen.extend(extra[:count - len(chosen)])
    if len(chosen) < count:
        raise OverlayError(
            f"{owner!r} has too few (friends-of-)friends for {count} replicas")
    return Placement(owner=owner, replicas=chosen)


def place_by_uptime(owner: str, peers: Sequence[str], count: int,
                    uptime: Callable[[str], float]) -> Placement:
    """Replicas on the highest-uptime peers (Supernova's tracked placement)."""
    candidates = sorted((p for p in peers if p != owner),
                        key=uptime, reverse=True)
    if count > len(candidates):
        raise OverlayError("not enough peers for the requested replication")
    return Placement(owner=owner, replicas=candidates[:count])


def fetch_from_holders(channel, reader: str, placement: Placement,
                       kind: str = "replica_fetch",
                       blob_of: Optional[Callable[[str],
                                                  Optional[bytes]]] = None,
                       verify: Optional[Callable[[str, bytes],
                                                 bool]] = None
                       ) -> Tuple[Optional[str], float]:
    """Hedged fetch against a placement's holders via a ReliableChannel.

    Holders are probed owner first, then replicas; returns
    ``(holder, elapsed)`` with ``holder=None`` when every holder is
    unreachable.  This is the availability claim made operational:
    replication only helps if the *fetch path* fails over — E12 drives
    storage reads through this instead of assuming any online replica is
    reachable.

    Replica holders are "another kind of service provider" (the paper's
    phrase), so a reachable holder is not necessarily an *honest* one.
    Pass ``blob_of`` (holder -> the bytes it would serve, ``None`` if it
    holds nothing) and ``verify`` (holder, blob -> bool, e.g. an envelope
    or hash-chain check) and each response is verified before it wins:
    holders serving invalid bytes are skipped, and when at least one
    holder answered but *no* response verified the fetch raises
    :class:`~repro.exceptions.ReplicaIntegrityError` instead of handing
    back tampered content.  Without ``blob_of`` the legacy first-responder
    hedge is used unchanged.

    When the channel carries a membership service, holders are reordered
    by the reader's health scores before probing (owner-first otherwise):
    the holders most likely to answer are paid for first, confirmed-dead
    ones last.

    Latency model: with :attr:`Simulator.concurrent` unset the verified
    path probes sequentially and ``elapsed`` sums every attempt (the
    legacy accounting, byte-identical).  With it set the probes are
    staggered hedges (one launch per ``channel.hedge_delay``, launching
    stops once an earlier *verified* response has completed) and
    ``elapsed`` is the winner's completion offset — the failure and
    verification semantics are unchanged.
    """
    holders = placement.holders
    membership = getattr(channel, "membership", None)
    if membership is not None:
        holders = membership.order_by_health(reader, holders)
    if blob_of is None:
        ok, winner, elapsed = channel.hedged(reader, holders, kind=kind)
        return (winner if ok else None), elapsed
    if channel.network.sim.concurrent:
        return _fetch_verified_concurrent(channel, reader, holders, kind,
                                          blob_of, verify)
    stats = channel.network.stats
    elapsed = 0.0
    probed = 0
    served = 0
    for holder in holders:
        blob = blob_of(holder)
        if blob is None:
            continue  # holds nothing — not worth a probe
        if probed > 0:
            stats.hedges += 1
        probed += 1
        ok, rtt = channel.call(reader, holder, kind=kind)
        elapsed += rtt
        if not ok:
            continue
        served += 1
        if verify is None or verify(holder, blob):
            return holder, elapsed
    if served > 0:
        raise ReplicaIntegrityError(
            f"{served} holder(s) answered {reader!r} but no response "
            "passed verification")
    return None, elapsed


def _fetch_verified_concurrent(channel, reader: str,
                               holders: Sequence[str], kind: str,
                               blob_of, verify
                               ) -> Tuple[Optional[str], float]:
    """The verified fetch as staggered hedges on the concurrent clock.

    A branch only *wins* when its RPC landed and its bytes verified —
    reachable-but-lying holders cannot shorten the critical path, they
    can only force the next hedge to launch (exactly the sequential
    semantics, minus the serial latency bill).
    """
    stats = channel.network.stats
    launched = []  # (launch offset, holder, future, satisfied)
    index = 0
    served = 0
    for holder in holders:
        blob = blob_of(holder)
        if blob is None:
            continue  # holds nothing — not worth a probe
        launch_at = index * channel.hedge_delay
        first_win = min((offset + future.latency
                         for offset, _h, future, satisfied in launched
                         if satisfied), default=None)
        if first_win is not None and first_win <= launch_at:
            break  # a verified response beat this hedge's launch time
        if index > 0:
            stats.hedges += 1
        index += 1
        future = channel.call_issue(reader, holder, kind=kind)
        if future.ok:
            served += 1
        satisfied = bool(future.ok
                         and (verify is None or verify(holder, blob)))
        launched.append((launch_at, holder, future, satisfied))
    wins = sorted((offset + future.latency, future.seq, holder, future)
                  for offset, holder, future, satisfied in launched
                  if satisfied)
    if wins:
        elapsed, _seq, winner, winning = wins[0]
        for _offset, _holder, future, _satisfied in launched:
            if future is not winning:
                future.cancel()
        return winner, elapsed
    elapsed = max((offset + future.latency
                   for offset, _h, future, _s in launched), default=0.0)
    if served > 0:
        raise ReplicaIntegrityError(
            f"{served} holder(s) answered {reader!r} but no response "
            "passed verification")
    return None, elapsed


def measure_availability(placement: Placement, churn_model,
                         probe_times: Sequence[float]) -> float:
    """Fraction of probes at which some holder is online."""
    if not probe_times:
        raise OverlayError("need at least one probe time")
    hits = 0
    for t in probe_times:
        if any(churn_model.online_at(holder, t)
               for holder in placement.holders):
            hits += 1
    return hits / len(probe_times)


def analytic_availability(placement: Placement, churn_model) -> float:
    """Independence approximation: ``1 - prod(1 - uptime_i)``.

    Useful as the sanity line in experiment E6: measured availability under
    *independent* churn should track this; correlated (diurnal, same
    timezone) churn falls below it — which is the experiment's punchline
    about friend replication.
    """
    miss = 1.0
    for holder in placement.holders:
        miss *= 1.0 - churn_model.uptime_fraction(holder)
    return 1.0 - miss


@dataclass
class ReplicaExposure:
    """Accounting of what replica holders observe (the small providers).

    Every ``record`` call notes that each holder of a placement stores one
    content object of the owner — in the clear unless ``encrypted``.  The
    summary reports, per holder, how many distinct users' readable content
    it sees: the paper's "small scale, local view" made measurable.
    """

    #: holder -> set of owners whose *readable* content it stores
    readable_owners: Dict[str, Set[str]] = field(default_factory=dict)
    #: holder -> number of stored objects (readable or not)
    stored_objects: Dict[str, int] = field(default_factory=dict)

    def record(self, placement: Placement, encrypted: bool) -> None:
        """Account one stored object across its replica holders."""
        for holder in placement.replicas:
            self.stored_objects[holder] = \
                self.stored_objects.get(holder, 0) + 1
            if not encrypted:
                self.readable_owners.setdefault(holder, set()).add(
                    placement.owner)

    def max_readable_view(self, total_users: int) -> float:
        """Worst holder's fraction of users whose data it can read."""
        if not self.readable_owners or total_users == 0:
            return 0.0
        return max(len(owners) for owners in
                   self.readable_owners.values()) / total_users

    def mean_readable_view(self, total_users: int) -> float:
        """Average holder's readable-view fraction."""
        if not self.readable_owners or total_users == 0:
            return 0.0
        views = [len(owners) / total_users
                 for owners in self.readable_owners.values()]
        return sum(views) / len(views)
