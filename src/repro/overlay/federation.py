"""Server federation: the Diaspora-pod decentralization model.

Section II-B of the paper: "**Server Federation**: ... The main purpose of
this architecture is to distribute users' data among several servers which
are running on separate storage entity.  In this way none of them will have
a complete global view of the private data stored in the system."

Users pick (or are assigned) a home server; content lives on the author's
home server; cross-server delivery federates a copy to each recipient's
home server.  :meth:`FederatedNetwork.server_view` exports exactly what one
server operator observes — the quantity experiment E8 compares against the
centralized provider ("one big provider" vs. "several small ones") and the
P2P overlays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import LookupError_, OverlayError
from repro.overlay.network import SimNetwork, SimNode


class FederationServer(SimNode):
    """One pod: hosts users, stores their content, receives federated copies."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.users: Set[str] = set()
        #: content id -> (author, payload)
        self.content: Dict[str, Tuple[str, bytes]] = {}
        #: social edges this server has observed (delivery metadata)
        self.observed_edges: Set[Tuple[str, str]] = set()


@dataclass
class FederatedDelivery:
    """Cost record for one federated post."""

    content_id: str
    servers_stored: List[str]
    cross_server_messages: int


class FederatedNetwork:
    """A set of pods plus the user -> home-server assignment."""

    def __init__(self, network: SimNetwork, server_names: Sequence[str]) -> None:
        if not server_names:
            raise OverlayError("federation needs at least one server")
        self.network = network
        self.servers: Dict[str, FederationServer] = {}
        for name in server_names:
            server = FederationServer(name)
            self.servers[name] = server
            network.register(server)
        self.home: Dict[str, str] = {}

    def register_user(self, user: str,
                      home: Optional[str] = None) -> str:
        """Assign a user to a home server (hash-balanced by default)."""
        if home is None:
            ordered = sorted(self.servers)
            digest = hashlib.sha256(b"repro/fed/" + user.encode()).digest()
            home = ordered[int.from_bytes(digest[:4], "big") % len(ordered)]
        if home not in self.servers:
            raise OverlayError(f"unknown server {home!r}")
        self.home[user] = home
        self.servers[home].users.add(user)
        return home

    def post(self, author: str, content_id: str, payload: bytes,
             recipients: Sequence[str]) -> FederatedDelivery:
        """Publish: store at home, federate to recipients' home servers.

        Every involved server records the author->recipient edges it can
        see — the metadata leak the paper attributes to federation.
        """
        home = self._home_of(author)
        home_server = self.servers[home]
        home_server.content[content_id] = (author, payload)
        stored = [home]
        cross = 0
        for recipient in recipients:
            r_home = self._home_of(recipient)
            home_server.observed_edges.add((author, recipient))
            if r_home != home:
                self.network.rpc(home, r_home, kind="fed_deliver")
                cross += 1
                remote = self.servers[r_home]
                if content_id not in remote.content:
                    stored.append(r_home)
                # Overwrites federate too: a re-post must replace the
                # remote copy, or remote readers are pinned to version 1.
                remote.content[content_id] = (author, payload)
                remote.observed_edges.add((author, recipient))
        return FederatedDelivery(content_id=content_id,
                                 servers_stored=stored,
                                 cross_server_messages=cross)

    def fetch(self, reader: str, content_id: str) -> bytes:
        """Read from the reader's home server (one RPC)."""
        home = self._home_of(reader)
        server = self.servers[home]
        self.network.rpc(reader, home, kind="fed_fetch")
        if content_id not in server.content:
            raise LookupError_(
                f"{content_id!r} was not federated to {home!r}")
        return server.content[content_id][1]

    def fetch_many(self, reader: str, content_ids: Sequence[str]
                   ) -> Dict[str, object]:
        """Batched read from the reader's home server (one RPC total).

        The whole batch rides a single ``fed_fetch_batch`` RPC — the
        federation analogue of the per-holder coalescing the DHT does.
        Ids missing from the home pod come back as
        :class:`LookupError_` **values** keyed by id (never raised), so
        one undelivered post cannot fail a feed's fetch pass.
        """
        results: Dict[str, object] = {}
        if not content_ids:
            return results
        home = self._home_of(reader)
        server = self.servers[home]
        self.network.rpc(reader, home, kind="fed_fetch_batch")
        for content_id in content_ids:
            if content_id in results:
                continue
            if content_id in server.content:
                results[content_id] = server.content[content_id][1]
            else:
                results[content_id] = LookupError_(
                    f"{content_id!r} was not federated to {home!r}")
        return results

    def _home_of(self, user: str) -> str:
        try:
            return self.home[user]
        except KeyError:
            raise OverlayError(f"user {user!r} has no home server")

    # -- exposure accounting (experiment E8) ----------------------------------

    def server_view(self, server_name: str) -> Dict[str, object]:
        """What one pod operator observes: users, content, social edges."""
        server = self.servers[server_name]
        return {
            "users": set(server.users),
            "content_ids": set(server.content),
            "authors": {author for author, _ in server.content.values()},
            "edges": set(server.observed_edges),
        }

    def max_view_fraction(self, total_content: int,
                          total_edges: int) -> Tuple[float, float]:
        """The worst single server's share of content and of the social graph.

        The paper's federation claim is precisely that this stays well
        below 1.0 (the centralized provider's value).
        """
        content_frac = max(
            (len(s.content) / total_content if total_content else 0.0)
            for s in self.servers.values())
        edge_frac = max(
            (len(s.observed_edges) / total_edges if total_edges else 0.0)
            for s in self.servers.values())
        return content_frac, edge_frac
