"""Unstructured overlays: flooding and push gossip over the social graph.

Section II-B of the paper: "**Unstructured**: No user in the system store
any index, and operations of system are simply done by the use of flooding
or gossip-based communication between users.  This kind of management has
almost zero overhead."  ("Zero overhead" = no index maintenance; the price
is paid per query, which is exactly what experiment E5 measures.)

Both primitives run event-driven on the simulator:

* :func:`flood_search` — TTL-limited flooding looking for the peer holding
  a key (Gnutella-style); returns whether/when it was found and the total
  message cost.
* :func:`gossip_disseminate` — push gossip with fanout ``f``: each
  infected peer forwards to ``f`` random neighbours; returns the coverage
  curve over rounds (the classic logistic curve).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

from repro.exceptions import OverlayError
from repro.overlay.network import Message, SimNetwork, SimNode


class GossipNode(SimNode):
    """A peer in the unstructured overlay, linked to social neighbours."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.neighbors: List[str] = []
        self.store: Set[str] = set()          # keys this peer holds
        self.seen_queries: Set[str] = set()   # duplicate suppression
        self.received: Dict[str, float] = {}  # rumor id -> arrival time
        self._search: Optional["_SearchState"] = None
        self._rumor_fanout = 3
        self._rng: Optional[_random.Random] = None

    # -- flooding search -------------------------------------------------------

    def on_flood_query(self, message: Message) -> None:
        """Handle a flooded query: answer if we hold the key, else forward."""
        query_id = message.payload["query_id"]
        if query_id in self.seen_queries:
            return
        self.seen_queries.add(query_id)
        state: _SearchState = message.payload["state"]
        key = message.payload["key"]
        ttl = message.payload["ttl"]
        if key in self.store:
            state.record_hit(self.node_id, self.network.sim.now)
            return
        if ttl <= 0:
            return
        for neighbor in self.neighbors:
            if neighbor == message.src:
                continue
            if not self.network.is_online(neighbor):
                continue  # don't pay to flood peers currently offline
            self.network.send(Message(
                kind="flood_query", src=self.node_id, dst=neighbor,
                payload={"query_id": query_id, "key": key, "ttl": ttl - 1,
                         "state": state}))

    # -- push gossip --------------------------------------------------------------

    def on_rumor(self, message: Message) -> None:
        """Handle a pushed rumor: record and forward to random neighbours."""
        rumor_id = message.payload["rumor_id"]
        if rumor_id in self.received:
            return
        self.received[rumor_id] = self.network.sim.now
        # The fabric's liveness source gates forwarding: a rumor is not
        # pushed toward peers the churn model currently has offline
        # (they rejoin with no way to receive it, and the messages were
        # being counted as if delivery were possible).
        targets = [n for n in self.neighbors
                   if n != message.src and self.network.is_online(n)]
        if self._rng is not None and len(targets) > self._rumor_fanout:
            targets = self._rng.sample(targets, self._rumor_fanout)
        for neighbor in targets:
            self.network.send(Message(
                kind="rumor", src=self.node_id, dst=neighbor,
                payload={"rumor_id": rumor_id}))


@dataclass
class _SearchState:
    """Shared mutable result slot for one flooded query."""

    hits: List[str] = field(default_factory=list)
    first_hit_time: Optional[float] = None

    def record_hit(self, node: str, when: float) -> None:
        self.hits.append(node)
        if self.first_hit_time is None:
            self.first_hit_time = when


@dataclass
class FloodResult:
    """Outcome and cost of one flooding search."""

    found: bool
    holders_reached: List[str]
    first_hit_time: Optional[float]
    messages: int


class GossipOverlay:
    """An unstructured overlay shaped by a social graph."""

    def __init__(self, network: SimNetwork, graph: nx.Graph,
                 fanout: int = 3) -> None:
        self.network = network
        self.graph = graph
        self.fanout = fanout
        self.nodes: Dict[str, GossipNode] = {}
        rng = network.sim.split_rng("gossip")
        for name in graph.nodes:
            node = GossipNode(str(name))
            node.neighbors = [str(n) for n in graph.neighbors(name)]
            node._rumor_fanout = fanout
            node._rng = rng
            self.nodes[str(name)] = node
            network.register(node)

    def place_key(self, key: str, holder: str) -> None:
        """Declare that ``holder`` stores ``key``."""
        self.nodes[holder].store.add(key)

    def flood_search(self, start: str, key: str, ttl: int = 6) -> FloodResult:
        """TTL-limited flood from ``start``; runs the simulator to quiescence."""
        if start not in self.nodes:
            raise OverlayError(f"unknown start node {start!r}")
        if not self.network.is_online(start):
            raise OverlayError(f"start node {start!r} is offline")
        state = _SearchState()
        query_id = f"{start}/{key}/{self.network.sim.now}"
        before = self.network.stats.messages
        self.network.send(Message(
            kind="flood_query", src=start, dst=start,
            payload={"query_id": query_id, "key": key, "ttl": ttl,
                     "state": state}))
        self.network.sim.run()
        return FloodResult(
            found=bool(state.hits), holders_reached=list(state.hits),
            first_hit_time=state.first_hit_time,
            messages=self.network.stats.messages - before)

    def gossip_disseminate(self, origin: str, rumor_id: str,
                           until: Optional[float] = None) -> Dict[str, float]:
        """Push-gossip a rumor; returns node -> arrival time for reached peers."""
        if origin not in self.nodes:
            raise OverlayError(f"unknown origin {origin!r}")
        if not self.network.is_online(origin):
            raise OverlayError(f"origin {origin!r} is offline")
        self.network.send(Message(
            kind="rumor", src=origin, dst=origin,
            payload={"rumor_id": rumor_id}))
        self.network.sim.run(until=until)
        return {name: node.received[rumor_id]
                for name, node in self.nodes.items()
                if rumor_id in node.received}

    def coverage(self, rumor_id: str) -> float:
        """Fraction of peers that have received the rumor."""
        reached = sum(1 for node in self.nodes.values()
                      if rumor_id in node.received)
        return reached / max(1, len(self.nodes))
