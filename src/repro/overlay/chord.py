"""Chord distributed hash table — the structured control overlay.

Section II-B of the paper: "Most of the recent DOSNs use structured
organization and distributed hash tables (DHTs) for the lookup service.
Prpl, Peerson, Safebook and Cachet all utilize structured control overlay
... queries will be resolved in a limited number of steps."

Classic Chord (Stoica et al.) over the simulated network: an ``m``-bit
identifier ring, finger tables for O(log n) iterative lookup, successor
lists for fault tolerance, and key replication on the successor set.
Lookups are *accounted* through :meth:`SimNetwork.rpc`, so experiment E5
gets faithful hop and message counts, including retries around offline
peers under churn.

Both construction modes are provided: :meth:`ChordRing.build` computes
exact routing state for a static peer set (what the lookup experiments
use), and :meth:`ChordNode.join` + :meth:`ChordRing.stabilize_all`
implement the incremental protocol (exercised by the tests to show the
ring converges).
"""

from __future__ import annotations

import contextlib
import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (DeadlineExceededError, LookupError_,
                              OverlayError, OverloadedError,
                              ReproDeprecationWarning, StorageError)
from repro.faults.overload import Deadline
from repro.overlay.network import SimNode

#: Identifier-space size in bits.
M_BITS = 32
_SPACE = 1 << M_BITS


def chord_id(name: str) -> int:
    """Hash a node name or content key onto the identifier ring."""
    return int.from_bytes(
        hashlib.sha256(b"repro/chord/" + name.encode()).digest()[:8],
        "big") % _SPACE


def in_interval(x: int, a: int, b: int, inclusive_right: bool = False) -> int:
    """Ring-interval membership test ``x in (a, b)`` modulo 2^m."""
    if a < b:
        return a < x < b or (inclusive_right and x == b)
    if a > b:  # interval wraps zero
        return x > a or x < b or (inclusive_right and x == b)
    # a == b: the interval is the whole ring minus the endpoint.
    return x != a or inclusive_right


@dataclass
class LookupResult:
    """Outcome of one iterative lookup.

    ``resolver`` is the node whose answer named the owner — the peer a
    defended lookup holds accountable when the claim loses a
    disjoint-path vote (``None`` for direct replica reads).
    """

    owner: str
    hops: int
    rtt: float
    failed_probes: int
    resolver: Optional[str] = None


class ChordNode(SimNode):
    """One Chord peer: routing state plus a local key-value store."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.chord_id = chord_id(name)
        self.successors: List[str] = []   # successor list, nearest first
        self.predecessor: Optional[str] = None
        self.fingers: List[Optional[str]] = [None] * M_BITS
        self.store: Dict[str, bytes] = {}

    # -- routing-table reads (executed at the *queried* node) -----------------

    def closest_preceding(self, key_id: int, ring: "ChordRing",
                          avoid: Optional[Set[str]] = None) -> Optional[str]:
        """The best next hop: the closest live finger preceding ``key_id``.

        ``avoid`` lists peers a resilient lookup has already written off
        (unresponsive after retries), so routing detours around them.
        """
        for finger in reversed(self.fingers):
            if finger is None or (avoid is not None and finger in avoid):
                continue
            node = ring.nodes.get(finger)
            if node is None or not node.online:
                continue
            if in_interval(node.chord_id, self.chord_id, key_id):
                return finger
        for succ in self.successors:
            if avoid is not None and succ in avoid:
                continue
            node = ring.nodes.get(succ)
            if node is not None and node.online \
                    and in_interval(node.chord_id, self.chord_id, key_id):
                return succ
        return None

    def first_live_successor(self, ring: "ChordRing",
                             avoid: Optional[Set[str]] = None
                             ) -> Optional[str]:
        """The nearest online entry of the successor list."""
        for succ in self.successors:
            if avoid is not None and succ in avoid:
                continue
            if ring.network.is_online(succ):
                return succ
        return None


class ChordRing:
    """A Chord overlay over a :class:`repro.fabric.Fabric`.

    Pass the fabric; the ring reads its network, resilient channel, and
    tracer from it.  Passing a bare :class:`SimNetwork` (and threading a
    ``channel=`` by hand) still works for one release but emits
    :class:`~repro.exceptions.ReproDeprecationWarning`.
    """

    def __init__(self, fabric: Any, successor_list_size: int = 4,
                 replication: int = 1, channel: Optional[Any] = None) -> None:
        from repro.fabric import coerce_fabric  # avoids an import cycle
        if replication < 1:
            raise OverlayError("replication factor must be >= 1")
        self.fabric = coerce_fabric(fabric, "ChordRing")
        self.network = self.fabric.network
        self.successor_list_size = successor_list_size
        self.replication = replication
        #: the :class:`repro.faults.ReliableChannel` (from the fabric);
        #: when set, every routing RPC gets retries/breakers and lookups
        #: route around peers that stay unresponsive after retries.
        self.channel = self.fabric.channel
        if channel is not None:
            warnings.warn(
                "ChordRing(channel=...) is deprecated; build the channel "
                "into the Fabric (Fabric.create(resilient=True) or "
                "Fabric(sim, network, channel=...))",
                ReproDeprecationWarning, stacklevel=2)
            self.channel = channel
        self.nodes: Dict[str, ChordNode] = {}

    def _rpc(self, src: str, dst: str, kind: str,
             deadline: Optional[Deadline] = None) -> Tuple[bool, float]:
        """One accounted RPC, through the resilient channel when wired.

        ``deadline`` is the caller's *remaining* budget (already
        decremented by time spent on earlier hops); the bare network
        path ignores it — deadline enforcement is channel machinery.
        """
        if self.channel is not None:
            return self.channel.call(src, dst, kind=kind, deadline=deadline)
        return self.network.rpc(src, dst, kind=kind)

    # -- construction -----------------------------------------------------------

    def add_node(self, name: str) -> ChordNode:
        """Register a peer (routing state filled by build/join)."""
        node = ChordNode(name)
        if node.chord_id in {n.chord_id for n in self.nodes.values()}:
            raise OverlayError(
                f"chord id collision for {name!r}; rename the node")
        self.nodes[name] = node
        self.network.register(node)
        if self.fabric.adversary is not None:
            self.fabric.adversary.enroll(name, "chord")
        return node

    def build(self) -> None:
        """Compute exact fingers/successors for the current static peer set."""
        ordered = sorted(self.nodes.values(), key=lambda n: n.chord_id)
        n = len(ordered)
        if n == 0:
            return
        ids = [node.chord_id for node in ordered]
        for index, node in enumerate(ordered):
            node.successors = [
                ordered[(index + k + 1) % n].node_id
                for k in range(min(self.successor_list_size, n - 1))
            ] or [node.node_id]
            node.predecessor = ordered[(index - 1) % n].node_id
            for bit in range(M_BITS):
                target = (node.chord_id + (1 << bit)) % _SPACE
                node.fingers[bit] = ordered[self._successor_index(
                    ids, target)].node_id

    @staticmethod
    def _successor_index(sorted_ids: Sequence[int], target: int) -> int:
        """Index of the first id >= target (wrapping)."""
        lo, hi = 0, len(sorted_ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if sorted_ids[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo % len(sorted_ids)

    # -- the iterative lookup (experiment E5's workhorse) -----------------------

    def owner_of(self, key: str) -> str:
        """Ground truth: the online-agnostic responsible node for ``key``."""
        ordered = sorted(self.nodes.values(), key=lambda n: n.chord_id)
        ids = [node.chord_id for node in ordered]
        return ordered[self._successor_index(ids, chord_id(key))].node_id

    def lookup(self, start: str, key: str, max_hops: int = 64,
               deadline: Optional[Deadline] = None,
               distrust: Optional[frozenset] = None,
               visited: Optional[Set[str]] = None,
               _single_path: bool = False) -> LookupResult:
        """Iterative Chord lookup from ``start`` for ``key``.

        Each routing step is one accounted RPC; offline peers cost a
        timeout and a fallback probe, mirroring real retry behaviour.

        With a :class:`~repro.faults.ReliableChannel` wired in, each step
        additionally gets retries/backoff, and a peer that stays
        unresponsive *after* retries is treated as dead for the rest of
        the lookup (routing detours around it instead of re-probing the
        same blocked hop until the hop budget runs out).

        With a membership service attached to the fabric, the ``avoid``
        set is pre-seeded with every peer the *start* node's view has
        confirmed dead — the lookup detours before paying for the first
        failed probe, which is the health-aware-routing half of E15.

        Deadline propagation: when the fabric carries an
        :class:`~repro.faults.OverloadConfig` with an op budget (or the
        caller passes ``deadline=``), every hop first checks the time
        already spent against the budget — an exhausted one raises
        :class:`~repro.exceptions.DeadlineExceededError` *before* the
        next RPC is issued — and each hop's channel call sees only the
        remaining budget (``deadline.minus(rtt)``).

        Adversary semantics (only with ``fabric.adversary`` installed):
        answers consumed from a compromised responder may be forged —
        a bare client *trusts* routing responses, so a forged owner
        claim is accepted as final (the vulnerability E19 measures).
        With a :class:`~repro.adversary.config.DefenseConfig` the public
        entry point delegates to :func:`~repro.adversary.defense
        .defended_chord_lookup`, which re-enters here per disjoint path
        (``_single_path=True``); ``distrust`` then excludes earlier
        paths' responders (and quarantined peers) from *route
        selection* — never from being resolved to as the owner — and
        ``visited`` collects this path's responders for the caller's
        disjointness bookkeeping.
        """
        adv = self.fabric.adversary
        if adv is not None and adv.config.defense is not None \
                and not _single_path:
            from repro.adversary.defense import defended_chord_lookup
            return defended_chord_lookup(self, start, key,
                                         max_hops=max_hops,
                                         deadline=deadline)
        defense = adv.config.defense if adv is not None else None
        key_id = chord_id(key)
        current = self.nodes.get(start)
        if current is None or not current.online:
            raise LookupError_(f"start node {start!r} is not online")
        if deadline is None and self.fabric.overload is not None:
            deadline = self.fabric.overload.mint_deadline(self.network.sim.now)
        view = None
        if self.fabric.membership is not None:
            view = self.fabric.membership.view_of(start)
        with self.network.tracer.span("chord.lookup", key=key,
                                      start=start) as span:
            hops = 0
            rtt = 0.0
            failed = 0
            avoid: Optional[Set[str]] = set() \
                if (self.channel is not None or view is not None) else None
            if view is not None:
                avoid.update(view.dead_peers())
            while hops < max_hops:
                if deadline is not None \
                        and deadline.expired(self.network.sim.now, rtt):
                    self.network.stats.deadline_expired += 1
                    self.network.metrics.inc("overload.deadline_expired",
                                             kind="chord_lookup")
                    raise DeadlineExceededError(
                        f"lookup for {key!r} ran out of budget after "
                        f"{hops} hops ({rtt:.3f}s spent)")
                hop_deadline = None if deadline is None \
                    else deadline.minus(rtt)
                if visited is not None and current.node_id != start:
                    visited.add(current.node_id)
                answer = None
                if adv is not None and current.node_id != start:
                    answer = adv.chord_answer(current.node_id, key)
                if answer is not None:
                    if answer.drop:
                        raise LookupError_(
                            f"{current.node_id!r} swallowed the lookup "
                            f"for {key!r} (adversarial drop)")
                    claimed_name, claimed_id = \
                        answer.final if answer.final is not None \
                        else answer.next_hop
                    if defense is not None and defense.certified_ids \
                            and not adv.check_claim("chord", claimed_name,
                                                    claimed_id):
                        adv.flag_cert_liar(current.node_id,
                                           overlay="chord")
                        raise LookupError_(
                            f"{current.node_id!r} presented a provably "
                            f"forged node-id claim for {claimed_name!r}")
                    kind = "chord_final" if answer.final is not None \
                        else "chord_step"
                    ok, t = self._rpc(current.node_id, claimed_name,
                                      kind=kind, deadline=hop_deadline)
                    rtt += t
                    hops += 1
                    if not ok:
                        failed += 1
                        if avoid is not None:
                            avoid.add(claimed_name)
                        raise LookupError_(
                            f"forged route target {claimed_name!r} for "
                            f"{key!r} is unreachable")
                    if answer.final is not None:
                        # a bare client trusts the final claim as-is
                        span.set_attr("hops", hops)
                        span.set_attr("failed_probes", failed)
                        span.set_attr("owner", claimed_name)
                        return LookupResult(owner=claimed_name, hops=hops,
                                            rtt=rtt, failed_probes=failed,
                                            resolver=current.node_id)
                    current = self.nodes[claimed_name]
                    continue
                successor = current.first_live_successor(self, avoid)
                if successor is None:
                    raise LookupError_(
                        f"{current.node_id!r} has no live successor "
                        "(ring partitioned)")
                final_name: Optional[str] = None
                if defense is None:
                    succ_node = self.nodes[successor]
                    if in_interval(key_id, current.chord_id,
                                   succ_node.chord_id,
                                   inclusive_right=True):
                        final_name = successor
                else:
                    # Redundant successor verification: scan the whole
                    # successor list, so any of the last
                    # ``successor_list_size`` predecessors can name the
                    # owner — a single compromised immediate predecessor
                    # is then not a routing choke point for the
                    # disjoint-path retries.
                    for succ in current.successors:
                        if avoid is not None and succ in avoid:
                            continue
                        snode = self.nodes.get(succ)
                        if snode is None or not snode.online:
                            continue
                        if in_interval(key_id, current.chord_id,
                                       snode.chord_id,
                                       inclusive_right=True):
                            final_name = succ
                            break
                if final_name is not None:
                    successor = final_name
                    if defense is not None and defense.certified_ids \
                            and not adv.check_claim(
                                "chord", successor,
                                adv.certified_id("chord", successor)):
                        # cannot happen for an honest successor; the
                        # check still runs real certificate verification
                        # on every routing response (cached per name)
                        adv.flag_cert_liar(current.node_id,
                                           overlay="chord")
                        raise LookupError_(
                            f"uncertifiable owner claim {successor!r}")
                    ok, t = self._rpc(current.node_id, successor,
                                      kind="chord_final",
                                      deadline=hop_deadline)
                    rtt += t
                    hops += 1
                    if ok:
                        span.set_attr("hops", hops)
                        span.set_attr("failed_probes", failed)
                        span.set_attr("owner", successor)
                        return LookupResult(owner=successor, hops=hops,
                                            rtt=rtt, failed_probes=failed,
                                            resolver=current.node_id)
                    failed += 1
                    if avoid is not None:
                        avoid.add(successor)
                    continue  # successor died mid-lookup; list advances
                route_avoid = avoid
                if distrust:
                    route_avoid = set(distrust) if avoid is None \
                        else (avoid | distrust)
                next_hop = current.closest_preceding(key_id, self,
                                                     route_avoid)
                if next_hop is None:
                    next_hop = successor
                ok, t = self._rpc(current.node_id, next_hop,
                                  kind="chord_step", deadline=hop_deadline)
                rtt += t
                hops += 1
                if ok:
                    current = self.nodes[next_hop]
                else:
                    failed += 1
                    if avoid is not None:
                        avoid.add(next_hop)
            raise LookupError_(
                f"lookup for {key!r} exceeded {max_hops} hops")

    # -- storage with successor-list replication ----------------------------------

    def replica_set(self, key: str) -> List[str]:
        """The ``replication`` nodes responsible for ``key``."""
        owner = self.owner_of(key)
        replicas = [owner]
        node = self.nodes[owner]
        for succ in node.successors:
            if len(replicas) >= self.replication:
                break
            if succ not in replicas:
                replicas.append(succ)
        return replicas

    def put(self, start: str, key: str, value: bytes) -> LookupResult:
        """Route to the owner and store on the replica set."""
        with self.network.tracer.span("chord.put", key=key, start=start):
            result = self.lookup(start, key)
            for replica in self.replica_set(key):
                self.nodes[replica].store[key] = value
                if replica != result.owner:
                    self._rpc(result.owner, replica, kind="chord_replicate")
            return result

    def get(self, start: str, key: str) -> Tuple[bytes, LookupResult]:
        """Route to the owner (or a live replica) and fetch.

        With a resilient channel, the read degrades gracefully: if routing
        cannot reach the owner (partition, crash), the replica set is
        probed directly with hedged reads from the querying peer, so any
        reachable holder serves the content.

        Latency note: the replica probing here is sequential *failover*
        (try the next holder only after the previous one fails), not true
        hedging, so its cost stays a serial sum under both latency
        models; staggered concurrent hedging lives in
        :meth:`repro.faults.ReliableChannel.hedged` and the verified path
        of :func:`repro.overlay.replication.fetch_from_holders`.
        """
        with self.network.tracer.span("chord.get", key=key, start=start):
            deadline = None
            if self.fabric.overload is not None:
                deadline = self.fabric.overload.mint_deadline(
                    self.network.sim.now)
            return self._get_inner(start, key, deadline)

    def _get_inner(self, start: str, key: str,
                   deadline: Optional[Deadline] = None
                   ) -> Tuple[bytes, LookupResult]:
        if self.channel is None:
            result = self.lookup(start, key, deadline=deadline)
            for replica in [result.owner] + self.replica_set(key):
                node = self.nodes.get(replica)
                if node is not None and node.online and key in node.store:
                    if replica != result.owner:
                        ok, _ = self.network.rpc(result.owner, replica,
                                                 kind="chord_replica_read")
                        if not ok:
                            continue
                    return node.store[key], result
            raise StorageError(
                f"key {key!r} unavailable: no live replica holds it")
        spent = 0.0
        try:
            result: Optional[LookupResult] = self.lookup(start, key,
                                                         deadline=deadline)
            spent = result.rtt
        except LookupError_:
            result = None  # routing failed; fall back to direct replica reads
            # (a DeadlineExceededError deliberately propagates instead:
            # an exhausted budget must not trigger the hedged fallback)
        owner = result.owner if result is not None else self.owner_of(key)
        candidates = [owner] + [r for r in self.replica_set(key)
                                if r != owner]
        if self.fabric.membership is not None:
            # Health-aware replica reads: probe the holders the reader
            # believes healthy first; confirmed-dead ones sort last.
            candidates = self.fabric.membership.order_by_health(
                start, candidates)
        probed = 0
        sheds = 0
        for replica in candidates:
            node = self.nodes.get(replica)
            if node is None or key not in node.store:
                continue  # crashed holders lost the key with their state
            if deadline is not None \
                    and deadline.expired(self.network.sim.now, spent):
                self.network.stats.deadline_expired += 1
                self.network.metrics.inc("overload.deadline_expired",
                                         kind="chord_replica_read")
                raise DeadlineExceededError(
                    f"read of {key!r} ran out of budget after "
                    f"{probed} replica probes")
            if probed > 0:
                self.network.stats.hedges += 1
            probed += 1
            future = self.channel.call_issue(
                start, replica, kind="chord_replica_read",
                deadline=None if deadline is None else deadline.minus(spent))
            ok, rtt = future.value
            spent += rtt
            if ok:
                if result is None:
                    result = LookupResult(owner=replica, hops=0, rtt=rtt,
                                          failed_probes=0)
                return node.store[key], result
            if future.cause == "overloaded":
                sheds += 1
        if sheds:
            raise OverloadedError(
                f"key {key!r} unavailable: {sheds} of {probed} replica "
                "probes were shed by overloaded holders")
        raise StorageError(
            f"key {key!r} unavailable: no reachable replica holds it")

    # -- batched reads (the feed fan-out / cache-warming path) -------------------

    def get_many(self, start: str, keys: Sequence[str]
                 ) -> Dict[str, object]:
        """Batched fetch: one route per owner, one RPC per extra holder.

        Keys hashing to the same owner share a single iterative lookup —
        the route amortizes over the whole group, because successor-list
        replica sets are a function of the owner alone — and each holder
        beyond the routed node is asked for *all* of its keys in one
        ``chord_batch_fetch`` RPC instead of one RPC per key.  Failures
        come back as exception **values** keyed by cid (a
        :class:`StorageError` or the routing :class:`LookupError_`), so
        one unreachable key never fails the batch.  Per-key serving
        semantics match :meth:`get`: the first live holder in
        routed-owner-then-replica-set order wins.
        """
        results: Dict[str, object] = {}
        seen: Set[str] = set()
        groups: Dict[str, List[str]] = {}
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            groups.setdefault(self.owner_of(key), []).append(key)
        with self.network.tracer.span("chord.get_many", start=start,
                                      keys=len(seen),
                                      owners=len(groups)) as span:
            # Owner groups are independent fetch chains (route + holder
            # probes); a real client runs them concurrently, so under the
            # concurrent model each group is a serial sub-span and the
            # groups roll up as max.  Spans are conditional to keep
            # off-mode traces byte-identical.
            concurrent = self.network.sim.concurrent
            fanout = (self.network.tracer.span("chord.get_many.fanout",
                                               parallel=True,
                                               owners=len(groups))
                      if concurrent else contextlib.nullcontext(None))
            with fanout:
                for owner, group in groups.items():
                    group_span = (self.network.tracer.span(
                                      "chord.get_group", owner=owner)
                                  if concurrent
                                  else contextlib.nullcontext(None))
                    with group_span:
                        self._get_group(start, owner, group, results)
            span.set_attr("served",
                          sum(1 for v in results.values()
                              if not isinstance(v, Exception)))
        return results

    def _get_group(self, start: str, owner: str, group: List[str],
                   results: Dict[str, object]) -> None:
        """Serve one owner-group of keys over a single route.

        Deadline semantics match the batch contract: an exhausted budget
        becomes a :class:`DeadlineExceededError` *value* for the group's
        unserved keys (one starved group never fails the whole feed
        fan-out).
        """
        deadline = None
        if self.fabric.overload is not None:
            deadline = self.fabric.overload.mint_deadline(self.network.sim.now)
        routed: Optional[str] = None
        spent = 0.0
        try:
            route_result = self.lookup(start, group[0], deadline=deadline)
            routed = route_result.owner
            spent = route_result.rtt
        except DeadlineExceededError as exc:
            for key in group:
                results[key] = exc
            return
        except LookupError_ as exc:
            if self.channel is None:
                for key in group:
                    results[key] = exc
                return
            # Resilient mode: routing failed, probe the replica set
            # directly (the same graceful degradation as single get).
        anchor = routed if routed is not None else owner
        candidates = [anchor] + [r for r in self.replica_set(group[0])
                                 if r != anchor]
        if self.channel is not None and self.fabric.membership is not None:
            candidates = self.fabric.membership.order_by_health(
                start, candidates)
        pending: Set[str] = set(group)
        expired = None
        for replica in candidates:
            if not pending:
                break
            node = self.nodes.get(replica)
            if node is None or not node.online:
                continue
            served = [k for k in group if k in pending and k in node.store]
            if not served:
                continue
            if deadline is not None \
                    and deadline.expired(self.network.sim.now, spent):
                self.network.stats.deadline_expired += 1
                self.network.metrics.inc("overload.deadline_expired",
                                         kind="chord_batch_fetch")
                expired = DeadlineExceededError(
                    f"batch fetch ran out of budget with "
                    f"{len(pending)} keys unserved")
                break
            if self.channel is not None:
                ok, t = self.channel.call(
                    start, replica, kind="chord_batch_fetch",
                    deadline=None if deadline is None
                    else deadline.minus(spent))
                spent += t
            elif replica != routed:
                ok, t = self.network.rpc(routed, replica,
                                         kind="chord_batch_fetch")
                spent += t
            else:
                ok = True  # the route already landed here; its keys ride free
            if not ok:
                continue
            for key in served:
                results[key] = node.store[key]
                pending.discard(key)
        for key in group:
            if key in pending:
                results[key] = expired if expired is not None \
                    else StorageError(
                        f"key {key!r} unavailable: no reachable replica "
                        "holds it")

    # -- incremental protocol (join / stabilize), used by the tests --------------

    def join(self, name: str, via: str) -> ChordNode:
        """Join a new peer through an existing one (successor via lookup)."""
        node = self.add_node(name)
        result = self.lookup(via, name)
        node.successors = [result.owner]
        node.fingers[0] = result.owner
        return node

    def stabilize_all(self, rounds: int = 1) -> None:
        """Run the periodic stabilization on every node ``rounds`` times."""
        for _ in range(rounds):
            for node in list(self.nodes.values()):
                if node.online:
                    self._stabilize(node)
            for node in list(self.nodes.values()):
                if node.online:
                    self._fix_fingers(node)

    def _stabilize(self, node: ChordNode) -> None:
        successor = node.first_live_successor(self)
        if successor is None:
            return
        succ_node = self.nodes[successor]
        pred = succ_node.predecessor
        if pred is not None and self.network.is_online(pred):
            pred_node = self.nodes[pred]
            if in_interval(pred_node.chord_id, node.chord_id,
                           succ_node.chord_id):
                successor = pred
                succ_node = pred_node
        # notify
        if succ_node.predecessor is None or not self.network.is_online(
                succ_node.predecessor) or in_interval(
                    node.chord_id,
                    self.nodes[succ_node.predecessor].chord_id
                    if succ_node.predecessor in self.nodes else 0,
                    succ_node.chord_id):
            succ_node.predecessor = node.node_id
        # refresh successor list from the successor's list
        merged = [successor] + [
            s for s in succ_node.successors if s != node.node_id]
        node.successors = merged[:self.successor_list_size]
        self._rpc(node.node_id, successor, kind="chord_stabilize")

    def _fix_fingers(self, node: ChordNode) -> None:
        ordered = sorted((n for n in self.nodes.values() if n.online),
                         key=lambda n: n.chord_id)
        ids = [n.chord_id for n in ordered]
        if not ordered:
            return
        for bit in range(M_BITS):
            target = (node.chord_id + (1 << bit)) % _SPACE
            node.fingers[bit] = ordered[
                self._successor_index(ids, target)].node_id
