"""Semi-structured overlay: Supernova-style super-peers.

Section II-B of the paper: "Semi-structured DOSN makes use of super peers,
which are a subset of all users who are responsible for storing the index
and managing other users as proposed in Supernova ... Such a structure may
include lookup services and tracking of users up-time to find the best
places for replication."

Every ordinary peer registers with one super-peer; super-peers collectively
shard a user/content index and track member uptime.  Lookups cost at most
three accounted RPCs (peer -> own super-peer -> indexing super-peer ->
target), which experiment E5 contrasts with Chord's O(log n) and flooding's
O(edges).  Uptime tracking feeds :func:`best_replica_hosts` — the
"best places for replication" service used by experiment E6.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import LookupError_, OverlayError
from repro.overlay.network import SimNetwork, SimNode


class Peer(SimNode):
    """An ordinary peer; knows only its super-peer."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.super_peer: Optional[str] = None
        self.store: Dict[str, bytes] = {}


class SuperPeer(SimNode):
    """A super-peer: member registry, index shard, uptime tracker."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.members: List[str] = []
        #: key -> holder peer names (this super-peer's index shard)
        self.index: Dict[str, List[str]] = {}
        #: member -> cumulative observed uptime fraction
        self.uptime: Dict[str, float] = {}

    def record_uptime(self, member: str, fraction: float) -> None:
        """Update the tracked uptime estimate for a member."""
        self.uptime[member] = fraction


@dataclass
class SPLookupResult:
    """Outcome of a super-peer lookup."""

    holders: List[str]
    hops: int
    rtt: float


class SuperPeerOverlay:
    """The two-tier overlay: peers sharded across super-peers."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        self.super_peers: Dict[str, SuperPeer] = {}
        self.peers: Dict[str, Peer] = {}

    # -- construction -----------------------------------------------------------

    def add_super_peer(self, name: str) -> SuperPeer:
        """Promote/create a super-peer."""
        sp = SuperPeer(name)
        self.super_peers[name] = sp
        self.network.register(sp)
        return sp

    def add_peer(self, name: str, super_peer: Optional[str] = None) -> Peer:
        """Create a peer, assigning it to a super-peer (hash-based default)."""
        if not self.super_peers:
            raise OverlayError("create super-peers before ordinary peers")
        peer = Peer(name)
        if super_peer is None:
            super_peer = self._assigned_super(name)
        if super_peer not in self.super_peers:
            raise OverlayError(f"unknown super-peer {super_peer!r}")
        peer.super_peer = super_peer
        self.super_peers[super_peer].members.append(name)
        self.peers[name] = peer
        self.network.register(peer)
        return peer

    def _assigned_super(self, name: str) -> str:
        ordered = sorted(self.super_peers)
        digest = hashlib.sha256(b"repro/sp/" + name.encode()).digest()
        return ordered[int.from_bytes(digest[:4], "big") % len(ordered)]

    def _index_super(self, key: str) -> str:
        """Which super-peer shards the index entry for ``key``."""
        ordered = sorted(self.super_peers)
        digest = hashlib.sha256(b"repro/sp/idx/" + key.encode()).digest()
        return ordered[int.from_bytes(digest[:4], "big") % len(ordered)]

    # -- publish / lookup ---------------------------------------------------------

    def publish(self, peer_name: str, key: str, value: bytes) -> None:
        """Store content locally and register it in the index shard."""
        peer = self.peers[peer_name]
        peer.store[key] = value
        index_sp = self._index_super(key)
        self.network.rpc(peer_name, peer.super_peer, kind="sp_publish")
        if index_sp != peer.super_peer:
            self.network.rpc(peer.super_peer, index_sp, kind="sp_index")
        self.super_peers[index_sp].index.setdefault(key, [])
        if peer_name not in self.super_peers[index_sp].index[key]:
            self.super_peers[index_sp].index[key].append(peer_name)

    def lookup(self, peer_name: str, key: str) -> SPLookupResult:
        """Resolve a key: at most peer->SP, SP->index-SP, then holders."""
        peer = self.peers.get(peer_name)
        if peer is None or not peer.online:
            raise LookupError_(f"peer {peer_name!r} is not online")
        hops = 0
        rtt = 0.0
        ok, t = self.network.rpc(peer_name, peer.super_peer, kind="sp_query")
        hops += 1
        rtt += t
        if not ok:
            raise LookupError_(
                f"super-peer {peer.super_peer!r} is unreachable")
        index_sp = self._index_super(key)
        if index_sp != peer.super_peer:
            ok, t = self.network.rpc(peer.super_peer, index_sp,
                                     kind="sp_query")
            hops += 1
            rtt += t
            if not ok:
                raise LookupError_(f"index super-peer {index_sp!r} is down")
        holders = list(self.super_peers[index_sp].index.get(key, ()))
        if not holders:
            raise LookupError_(f"key {key!r} is not indexed")
        return SPLookupResult(holders=holders, hops=hops, rtt=rtt)

    def fetch(self, peer_name: str, key: str) -> Tuple[bytes, SPLookupResult]:
        """Lookup then download from the first live holder."""
        result = self.lookup(peer_name, key)
        for holder in result.holders:
            node = self.peers.get(holder)
            if node is not None and node.online and key in node.store:
                ok, t = self.network.rpc(peer_name, holder, kind="sp_fetch")
                result.hops += 1
                result.rtt += t
                if ok:
                    return node.store[key], result
        raise LookupError_(f"no live holder for {key!r}")

    # -- uptime-aware replica placement (feeds experiment E6) ---------------------

    def report_uptimes(self, fractions: Dict[str, float]) -> None:
        """Feed observed uptime fractions to each member's super-peer."""
        for member, fraction in fractions.items():
            peer = self.peers.get(member)
            if peer is not None and peer.super_peer:
                self.super_peers[peer.super_peer].record_uptime(member,
                                                                fraction)

    def best_replica_hosts(self, count: int,
                           exclude: Sequence[str] = ()) -> List[str]:
        """The ``count`` highest-uptime peers across all super-peers."""
        scored: List[Tuple[float, str]] = []
        for sp in self.super_peers.values():
            for member, fraction in sp.uptime.items():
                if member not in exclude:
                    scored.append((fraction, member))
        scored.sort(reverse=True)
        return [member for _, member in scored[:count]]
