"""Churn models: when are peers online?

Section I of the paper: "The main obstacle of decentralization is that users
are responsible for their data availability.  Users, their friends, or
other peers need to be online for better availability."  Experiment E6
sweeps replication policies against the session processes defined here.

All models expose the same two-method interface:

* ``online_at(peer, t)``     — deterministic boolean given the model seed;
* ``uptime_fraction(peer)``  — long-run availability of the peer.

Determinism matters: availability is then a pure function of (seed, time),
so experiments are exactly repeatable and the *same* schedule can be
re-queried by the replication layer and by the ground-truth evaluator.
"""

from __future__ import annotations

import hashlib
import math
import random as _random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import SimulationError


def _peer_rng(seed: int, peer: str) -> _random.Random:
    digest = hashlib.sha256(f"repro/churn/{seed}/{peer}".encode()).digest()
    return _random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class AlwaysOn:
    """The degenerate no-churn model (the centralized-provider assumption)."""

    def online_at(self, peer: str, t: float) -> bool:
        """Always True."""
        return True

    def uptime_fraction(self, peer: str) -> float:
        """Always 1.0."""
        return 1.0


@dataclass
class ExponentialOnOff:
    """Alternating exponential on/off sessions (classic P2P churn).

    Each peer draws an independent session schedule from the seed; mean
    session/gap lengths may be heterogeneous via ``spread`` (peers get a
    multiplier log-uniform in ``[1/spread, spread]``).
    """

    mean_online: float = 3600.0
    mean_offline: float = 7200.0
    seed: int = 0
    spread: float = 4.0
    horizon: float = 7 * 24 * 3600.0
    _schedules: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict, repr=False)
    _starts: Dict[str, List[float]] = field(default_factory=dict, repr=False)

    def _schedule(self, peer: str) -> List[Tuple[float, float]]:
        """The peer's (start, end) online intervals up to the horizon."""
        cached = self._schedules.get(peer)
        if cached is not None:
            return cached
        rng = _peer_rng(self.seed, peer)
        factor = math.exp(rng.uniform(-math.log(self.spread),
                                      math.log(self.spread)))
        intervals: List[Tuple[float, float]] = []
        t = rng.expovariate(1.0 / self.mean_offline)
        while t < self.horizon:
            up = rng.expovariate(1.0 / (self.mean_online * factor))
            intervals.append((t, min(t + up, self.horizon)))
            t += up + rng.expovariate(1.0 / self.mean_offline)
        self._schedules[peer] = intervals
        self._starts[peer] = [start for start, _ in intervals]
        return intervals

    def online_at(self, peer: str, t: float) -> bool:
        """Whether the peer's schedule covers time ``t``.

        A bisect over interval start times rather than a linear scan —
        E12 queries schedules inside hot lookup loops, where O(n) per
        probe over week-long schedules adds up.
        """
        if not 0 <= t <= self.horizon:
            raise SimulationError(f"time {t} outside churn horizon")
        intervals = self._schedule(peer)
        i = bisect_right(self._starts[peer], t) - 1
        return i >= 0 and t < intervals[i][1]

    def uptime_fraction(self, peer: str) -> float:
        """Measured online share over the horizon."""
        total = sum(end - start for start, end in self._schedule(peer))
        return total / self.horizon

    def sessions(self, peer: str) -> List[Tuple[float, float]]:
        """The raw session intervals (for session-length statistics)."""
        return list(self._schedule(peer))


@dataclass
class DiurnalChurn:
    """Day-night availability: a sinusoidal online probability per hour.

    Peers get a random timezone phase and a personal base availability.
    ``online_at`` thins a per-hour Bernoulli draw deterministically from
    the seed, giving correlated day/night patterns across the population —
    the worst case for friend-based replication (friends share timezones:
    ``phase_correlation`` pulls phases toward a common value).
    """

    base: float = 0.45
    amplitude: float = 0.35
    seed: int = 0
    phase_correlation: float = 0.0

    def _phase(self, peer: str) -> float:
        rng = _peer_rng(self.seed, peer)
        own = rng.uniform(0, 24)
        return (1 - self.phase_correlation) * own

    def online_probability(self, peer: str, t: float) -> float:
        """P(online) at virtual time ``t`` seconds."""
        hour = (t / 3600.0 + self._phase(peer)) % 24
        level = self.base + self.amplitude * math.sin(
            2 * math.pi * (hour - 6) / 24)
        return min(0.99, max(0.01, level))

    def online_at(self, peer: str, t: float) -> bool:
        """Deterministic Bernoulli draw per (peer, hour-slot)."""
        slot = int(t // 3600)
        digest = hashlib.sha256(
            f"repro/diurnal/{self.seed}/{peer}/{slot}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return u < self.online_probability(peer, t)

    def uptime_fraction(self, peer: str) -> float:
        """Average of the daily probability curve."""
        return sum(self.online_probability(peer, h * 3600.0)
                   for h in range(24)) / 24.0


def apply_churn_to_network(network, model, t: float) -> int:
    """Flip every registered node's ``online`` flag per the model at ``t``.

    Returns the number of online nodes; used by lookup-under-churn
    experiments to snapshot availability before issuing queries.

    Flips go through :meth:`SimNode.go_online` / :meth:`SimNode.go_offline`
    rather than assigning ``online`` directly, so subclasses that re-sync
    state in those hooks actually see churn transitions.
    """
    online = 0
    for node in network.nodes.values():
        want = model.online_at(node.node_id, t)
        if want and not node.online:
            node.go_online()
        elif not want and node.online:
            node.go_offline()
        online += int(want)
    return online
