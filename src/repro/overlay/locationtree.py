"""Vis-à-Vis distributed location trees (Section II-B).

"Vis-a-vis designed its own structure *distributed location trees*, which
provides efficient and scalable sharing."  In Vis-à-Vis each user runs a
Virtual Individual Server (VIS); a social *group* maintains one location
tree whose nodes correspond to geographic regions, each node hosted by a
member's VIS.  Location-restricted queries ("group members near Istanbul")
descend only the matching subtree, touching O(depth + results) servers
instead of the whole group.

Implementation notes:

* regions are hierarchical paths like ``("europe", "turkey", "istanbul")``;
* each tree node is *hosted* by the VIS of some member inside that region
  (the first member to populate it, re-hostable on failure) — so the tree
  itself is distributed, matching the paper's "decentralization via
  virtual individual servers";
* queries are accounted through :meth:`SimNetwork.rpc` hop by hop, so the
  lookup experiments can compare against the other overlays;
* a member's coordinates are visible only *inside* the subtree they chose
  to register under — the location-privacy dial Vis-à-Vis exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import LookupError_, OverlayError
from repro.overlay.network import SimNetwork, SimNode

#: A region path, root-first, e.g. ``("europe", "turkey", "istanbul")``.
Region = Tuple[str, ...]


class VirtualIndividualServer(SimNode):
    """One member's always-on personal server (the Vis-à-Vis VIS)."""

    def __init__(self, owner: str) -> None:
        super().__init__(owner)
        #: (group, region) tree nodes this VIS currently hosts
        self.hosted: List[Tuple[str, Region]] = []


@dataclass
class _TreeNode:
    """One region node of a group's location tree."""

    region: Region
    host: str                                  # VIS owner hosting this node
    members: List[str] = field(default_factory=list)   # members *at* region
    children: Dict[str, "_TreeNode"] = field(default_factory=dict)


@dataclass
class LocationQueryResult:
    """Members found plus the traversal cost."""

    members: List[str]
    hops: int
    rtt: float
    servers_contacted: List[str]


class LocationTree:
    """A single group's distributed location tree."""

    def __init__(self, group: str, network: SimNetwork) -> None:
        self.group = group
        self.network = network
        self._root: Optional[_TreeNode] = None
        self.servers: Dict[str, VirtualIndividualServer] = {}

    # -- membership -------------------------------------------------------------

    def _ensure_server(self, owner: str) -> VirtualIndividualServer:
        server = self.servers.get(owner)
        if server is None:
            server = VirtualIndividualServer(owner)
            self.servers[owner] = server
            self.network.register(server)
        return server

    def add_member(self, owner: str, region: Region) -> None:
        """Join the group, registering under ``region``.

        Creates any missing tree nodes along the path; each new node is
        hosted by the joining member's VIS (the first VIS inside that
        region), which is how the tree stays distributed.
        """
        if not region:
            raise OverlayError("region paths need at least one component")
        server = self._ensure_server(owner)
        if self._root is None:
            self._root = _TreeNode(region=(), host=owner)
            server.hosted.append((self.group, ()))
        node = self._root
        path: Region = ()
        for component in region:
            path = path + (component,)
            child = node.children.get(component)
            if child is None:
                child = _TreeNode(region=path, host=owner)
                node.children[component] = child
                server.hosted.append((self.group, path))
            node = child
        node.members.append(owner)

    def remove_member(self, owner: str, region: Region) -> None:
        """Leave the group (empty nodes are left in place; hosts remain)."""
        node = self._find(region)
        if node is None or owner not in node.members:
            raise OverlayError(f"{owner!r} is not registered at {region}")
        node.members.remove(owner)

    def _find(self, region: Region) -> Optional[_TreeNode]:
        node = self._root
        for component in region:
            if node is None:
                return None
            node = node.children.get(component)
        return node

    # -- failure handling ----------------------------------------------------------

    def rehost(self, region: Region, new_host: str) -> None:
        """Move a tree node to another member's VIS (recovery path)."""
        node = self._find(region)
        if node is None:
            raise OverlayError(f"no tree node for region {region}")
        self._ensure_server(new_host)
        old = self.servers.get(node.host)
        if old is not None and (self.group, region) in old.hosted:
            old.hosted.remove((self.group, region))
        node.host = new_host
        self.servers[new_host].hosted.append((self.group, region))

    # -- queries ----------------------------------------------------------------------

    def query(self, requester: str, region: Region,
              max_results: Optional[int] = None) -> LocationQueryResult:
        """All group members registered under ``region``'s subtree.

        Descends from the root, paying one RPC per tree node visited; a
        node whose host VIS is offline makes its whole subtree unreachable
        (the failure mode :meth:`rehost` exists for).
        """
        if self._root is None:
            raise LookupError_(f"group {self.group!r} has no members")
        hops = 0
        rtt = 0.0
        contacted: List[str] = []
        node = self._root
        previous = requester
        # phase 1: descend to the queried region
        for component in region:
            ok, t = self.network.rpc(previous, node.host, kind="vis_route")
            hops += 1
            rtt += t
            contacted.append(node.host)
            if not ok:
                raise LookupError_(
                    f"VIS {node.host!r} hosting {node.region} is offline; "
                    "rehost the node to restore the subtree")
            previous = node.host
            node = node.children.get(component)
            if node is None:
                return LocationQueryResult(members=[], hops=hops, rtt=rtt,
                                           servers_contacted=contacted)
        # phase 2: collect the subtree
        members: List[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            ok, t = self.network.rpc(previous, current.host,
                                     kind="vis_collect")
            hops += 1
            rtt += t
            contacted.append(current.host)
            if not ok:
                continue  # that branch is dark; report what we can reach
            members.extend(current.members)
            if max_results is not None and len(members) >= max_results:
                members = members[:max_results]
                break
            stack.extend(current.children.values())
        return LocationQueryResult(members=sorted(set(members)), hops=hops,
                                   rtt=rtt, servers_contacted=contacted)

    # -- privacy accounting -----------------------------------------------------------

    def location_visibility(self, member: str,
                            region: Region) -> List[Region]:
        """Which region prefixes can learn this member's presence.

        A member registered at ``region`` is discoverable by queries on
        every prefix of that path — the precision they registered at *is*
        the privacy they gave up, Vis-à-Vis's central dial.
        """
        node = self._find(region)
        if node is None or member not in node.members:
            raise OverlayError(f"{member!r} is not registered at {region}")
        return [region[:i] for i in range(len(region) + 1)]
