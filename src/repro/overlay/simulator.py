"""Deterministic discrete-event simulator for single-host peer experiments.

The paper's DOSNs (PeerSoN, Safebook, Cachet, Supernova, Cuckoo, ...) were
deployed over real networks; per the calibration note ("simulate peers on
one host") this module provides the substitute substrate: a classic
event-queue simulator with virtual time, so thousands of peers run in one
process with reproducible results.

Design points:

* all randomness comes from the simulator's seeded :class:`random.Random`
  (or RNGs split from it via :meth:`Simulator.split_rng`), so every
  experiment is a pure function of its seed;
* events at equal timestamps fire in schedule order (a monotone sequence
  number breaks ties), which removes heap nondeterminism;
* :class:`Event` handles support cancellation (needed by churn timers).

**The concurrent virtual-time kernel.**  The accounted-RPC shortcut
(:meth:`repro.overlay.network.SimNetwork.rpc`) returns an RTT without
advancing the clock, which historically forced every fan-out path —
quorum probes, hedged replica fetches, SWIM ping-req chains, batched
feed fetches — to *sum* round trips a real client would overlap.
:class:`SimFuture` fixes the accounting: an issued operation settles
immediately (all RNG draws happen at issue time, in issue order, so the
synchronous wrappers keep byte-identical random streams), but carries a
virtual *completion time*.  The combinators :func:`gather`,
:func:`quorum_of` and :func:`first_of` then reduce a fan-out to its
critical path: with :attr:`Simulator.concurrent` set, overlapped
operations cost the **max** (or the ``n``-th completion, for quorums) of
their latencies instead of the sum.  Settle order is fixed by
``(completion time, issue sequence)``, so two runs at one seed settle
identically.  With ``concurrent=False`` (the default) every combinator
reports the legacy serial sum, keeping committed experiment tables
byte-identical.
"""

from __future__ import annotations

import heapq
import math
import random as _random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback; comparable by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); lazily removed)."""
        self.cancelled = True


class Simulator:
    """A virtual clock plus an event queue.

    ``concurrent`` selects the latency model the fan-out combinators
    apply (see the module docstring): ``False`` (default) preserves the
    legacy sum-of-round-trips accounting byte-for-byte; ``True`` makes
    overlapped operations pay their critical path.
    """

    def __init__(self, seed: int = 0, concurrent: bool = False) -> None:
        self.now: float = 0.0
        self.rng = _random.Random(seed)
        #: latency model for fan-out: critical path (True) vs serial sum
        self.concurrent = concurrent
        self._queue: List[Event] = []
        self._sequence = 0
        self._future_sequence = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if not math.isfinite(delay):
            # NaN compares False against everything, so it would slip
            # past the negativity check and poison the heap invariant
            # (heap order is undefined once one key is incomparable).
            raise SimulationError(
                f"event delay must be finite (got {delay})")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        event = Event(time=self.now + delay, sequence=self._sequence,
                      callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule at an absolute virtual time."""
        return self.schedule(when - self.now, callback)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` fire.  Returns the number of events processed."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:  # pragma: no cover - heap invariant
                raise SimulationError("event queue went backwards")
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None and self.now < until:
            self.now = until
        return processed

    def split_rng(self, label: str) -> _random.Random:
        """An independent deterministic RNG derived from the seed + label.

        Use one per subsystem so adding randomness in one place does not
        perturb another's stream (the classic simulation-reproducibility
        trap).
        """
        return _random.Random(f"{self.rng.random()}/{label}")

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)

    def future(self, latency: float, value: Any = None,
               ok: bool = True,
               cause: Optional[str] = None) -> "SimFuture":
        """Issue a :class:`SimFuture` completing ``latency`` from now."""
        return SimFuture(self, latency, value=value, ok=ok, cause=cause)


class SimFuture:
    """The completion token of one issued operation.

    Because accounted RPCs resolve their outcome at issue time (every
    RNG draw happens immediately, in issue order), a future is *settled*
    the moment it is created — what it defers is the **latency
    accounting**: ``completion = issued_at + latency`` on the virtual
    clock is when a real client would see the response.  The combinators
    below reduce sets of futures to deterministic critical paths.

    ``seq`` is a simulator-wide monotone issue sequence; all settle
    ordering ties break on it, never on object identity.
    """

    __slots__ = ("sim", "issued_at", "seq", "latency", "value", "ok",
                 "cause", "cancelled")

    def __init__(self, sim: Simulator, latency: float, value: Any = None,
                 ok: bool = True, cause: Optional[str] = None) -> None:
        if not math.isfinite(latency) or latency < 0:
            raise SimulationError(
                f"future latency must be finite and >= 0 (got {latency})")
        self.sim = sim
        self.issued_at = sim.now
        self.seq = sim._future_sequence
        sim._future_sequence += 1
        self.latency = latency
        #: the operation's result (e.g. the ``(ok, rtt)`` pair of an RPC)
        self.value = value
        #: whether the operation succeeded (the default quorum predicate)
        self.ok = ok
        #: failure cause tag ("overloaded", "slow", a loss cause, ...) —
        #: ``None`` on success; set by the network so callers can treat
        #: a shed differently from a timeout without re-deriving it.
        self.cause = cause
        #: set by a combinator when a winner made this branch moot; the
        #: operation was still *issued* (its messages are already paid
        #: for), but nothing waits on it.
        self.cancelled = False

    @property
    def completion(self) -> float:
        """Absolute virtual time at which this operation completes."""
        return self.issued_at + self.latency

    def cancel(self) -> None:
        """Mark the branch as abandoned by its consumer (bookkeeping)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimFuture(seq={self.seq}, ok={self.ok}, "
                f"latency={self.latency:.4f})")


@dataclass
class FanoutResult:
    """What a combinator settled: winners, order, and the elapsed cost.

    ``elapsed`` follows the simulator's latency model — critical path
    when :attr:`Simulator.concurrent`, serial sum otherwise — while
    ``sum_latency`` / ``max_latency`` always carry both views so
    benchmarks can report the sequential/concurrent gap from one run.
    """

    futures: List[SimFuture]        #: issue order, as passed in
    settled: List[SimFuture]        #: (completion, seq) order
    winners: List[SimFuture]        #: first ``n`` satisfying, settle order
    met: bool                       #: whether the quorum was reached
    elapsed: float                  #: cost under the simulator's model
    sum_latency: float              #: serial accounting (sum of latencies)
    max_latency: float              #: waiting for *every* branch


def quorum_of(n: int, futures: Sequence[SimFuture],
              predicate: Optional[Callable[[SimFuture], bool]] = None
              ) -> FanoutResult:
    """Settle a fan-out when ``n`` satisfying branches have completed.

    ``predicate`` marks the satisfying branches (default:
    :attr:`SimFuture.ok`).  Settle order is ``(completion, seq)`` —
    deterministic across runs at one seed.  Under the concurrent model
    ``elapsed`` is the ``n``-th satisfying completion relative to the
    earliest issue (the client returns as soon as the quorum is in); an
    unmet quorum waits for every branch (``max_latency``).  Under the
    serial model ``elapsed`` is the sum of every branch's latency —
    exactly what the pre-kernel sequential loops paid.  Branches that
    complete after the settle point are flagged ``cancelled``.
    """
    futures = list(futures)
    if predicate is None:
        predicate = lambda future: future.ok  # noqa: E731
    sum_latency = sum(future.latency for future in futures)
    if not futures:
        return FanoutResult(futures=[], settled=[], winners=[],
                            met=n <= 0, elapsed=0.0, sum_latency=0.0,
                            max_latency=0.0)
    epoch = min(future.issued_at for future in futures)
    settled = sorted(futures, key=lambda f: (f.completion, f.seq))
    max_latency = settled[-1].completion - epoch
    winners: List[SimFuture] = []
    for future in settled:
        if len(winners) < n and predicate(future):
            winners.append(future)
    met = len(winners) >= n
    if n <= 0:
        # Nothing to wait for: the quorum was satisfied before any of
        # these branches was needed (e.g. local write acks covered W).
        critical = 0.0
    elif met:
        settle_at = winners[-1].completion
        for future in settled:
            if future.completion > settle_at or (
                    future.completion == settle_at
                    and future.seq > winners[-1].seq):
                future.cancel()
        critical = settle_at - epoch
    else:
        critical = max_latency
    concurrent = futures[0].sim.concurrent
    return FanoutResult(
        futures=futures, settled=settled, winners=winners, met=met,
        elapsed=(critical if concurrent else sum_latency),
        sum_latency=sum_latency, max_latency=max_latency)


def gather(futures: Sequence[SimFuture]) -> FanoutResult:
    """Wait for *every* branch: elapsed is the max (or serial sum)."""
    futures = list(futures)
    return quorum_of(len(futures), futures, predicate=lambda f: True)


def first_of(futures: Sequence[SimFuture],
             predicate: Optional[Callable[[SimFuture], bool]] = None
             ) -> FanoutResult:
    """Settle on the first satisfying branch (a 1-quorum)."""
    return quorum_of(1, futures, predicate=predicate)


@dataclass
class UniformLatency:
    """Link latency drawn uniformly from ``[low, high]`` per message."""

    low: float = 0.010
    high: float = 0.100

    def sample(self, rng: _random.Random, src: Any, dst: Any) -> float:
        """A latency sample for one message from ``src`` to ``dst``."""
        return rng.uniform(self.low, self.high)


@dataclass
class FixedLatency:
    """Constant link latency (useful for hop-count-only experiments)."""

    value: float = 0.050

    def sample(self, rng: _random.Random, src: Any, dst: Any) -> float:
        """Always :attr:`value`."""
        return self.value
