"""Deterministic discrete-event simulator for single-host peer experiments.

The paper's DOSNs (PeerSoN, Safebook, Cachet, Supernova, Cuckoo, ...) were
deployed over real networks; per the calibration note ("simulate peers on
one host") this module provides the substitute substrate: a classic
event-queue simulator with virtual time, so thousands of peers run in one
process with reproducible results.

Design points:

* all randomness comes from the simulator's seeded :class:`random.Random`
  (or RNGs split from it via :meth:`Simulator.split_rng`), so every
  experiment is a pure function of its seed;
* events at equal timestamps fire in schedule order (a monotone sequence
  number breaks ties), which removes heap nondeterminism;
* :class:`Event` handles support cancellation (needed by churn timers).
"""

from __future__ import annotations

import heapq
import random as _random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback; comparable by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing (O(1); lazily removed)."""
        self.cancelled = True


class Simulator:
    """A virtual clock plus an event queue."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = _random.Random(seed)
        self._queue: List[Event] = []
        self._sequence = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        event = Event(time=self.now + delay, sequence=self._sequence,
                      callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule at an absolute virtual time."""
        return self.schedule(when - self.now, callback)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` fire.  Returns the number of events processed."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:  # pragma: no cover - heap invariant
                raise SimulationError("event queue went backwards")
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None and self.now < until:
            self.now = until
        return processed

    def split_rng(self, label: str) -> _random.Random:
        """An independent deterministic RNG derived from the seed + label.

        Use one per subsystem so adding randomness in one place does not
        perturb another's stream (the classic simulation-reproducibility
        trap).
        """
        return _random.Random(f"{self.rng.random()}/{label}")

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)


@dataclass
class UniformLatency:
    """Link latency drawn uniformly from ``[low, high]`` per message."""

    low: float = 0.010
    high: float = 0.100

    def sample(self, rng: _random.Random, src: Any, dst: Any) -> float:
        """A latency sample for one message from ``src`` to ``dst``."""
        return rng.uniform(self.low, self.high)


@dataclass
class FixedLatency:
    """Constant link latency (useful for hop-count-only experiments)."""

    value: float = 0.050

    def sample(self, rng: _random.Random, src: Any, dst: Any) -> float:
        """Always :attr:`value`."""
        return self.value
