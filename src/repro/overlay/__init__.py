"""Overlay substrates for DOSN architectures (Section II of the paper).

One module per architecture class from the survey's taxonomy, all running
on the deterministic simulator in :mod:`repro.overlay.simulator`:

==================  =========================================================
Architecture        Implementation
==================  =========================================================
Structured          :mod:`repro.overlay.chord`, :mod:`repro.overlay.kademlia`
Semi-structured     :mod:`repro.overlay.superpeer` (Supernova)
Unstructured        :mod:`repro.overlay.gossip` (flooding + push gossip)
Hybrid              :mod:`repro.overlay.hybrid` (Cachet/Cuckoo DHT + caches)
Server federation   :mod:`repro.overlay.federation` (Diaspora pods)
==================  =========================================================

Cross-cutting: :mod:`repro.overlay.churn` (session models) and
:mod:`repro.overlay.replication` (placement policies, availability, and the
"replicas are small providers" exposure accounting).  Fault injection and
the resilient RPC layer live in :mod:`repro.faults` and plug into
:class:`SimNetwork` via :meth:`SimNetwork.install_faults`.
"""

from repro.overlay.network import Message, NetworkStats, SimNetwork, SimNode
from repro.overlay.simulator import (Event, FixedLatency, Simulator,
                                     UniformLatency)

__all__ = [
    "Event", "FixedLatency", "Message", "NetworkStats", "SimNetwork",
    "SimNode", "Simulator", "UniformLatency",
]
