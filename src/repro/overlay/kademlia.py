"""Kademlia DHT — the second structured overlay (XOR metric, k-buckets).

Included alongside Chord because several surveyed DOSNs (Cachet's FreePastry
substrate, PeerSoN's OpenDHT) use prefix/XOR-routing DHTs rather than ring
DHTs; experiment E5 shows both resolve lookups in O(log n) steps, which is
the survey's actual claim ("queries will be resolved in a limited number of
steps"), with different constants.

Implemented: 64-bit XOR identifier space, k-buckets with least-recently-seen
ordering, iterative ``alpha``-parallel node lookup, and STORE/FIND_VALUE on
the ``k`` closest nodes.
"""

from __future__ import annotations

import contextlib
import hashlib
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.exceptions import (DeadlineExceededError, LookupError_,
                              OverlayError, ReproDeprecationWarning,
                              StorageError)
from repro.faults.overload import Deadline
from repro.overlay.network import SimNode

ID_BITS = 64


def kad_id(name: str) -> int:
    """Hash a name/key onto the XOR identifier space."""
    return int.from_bytes(
        hashlib.sha256(b"repro/kad/" + name.encode()).digest()[:8], "big")


def xor_distance(a: int, b: int) -> int:
    """The Kademlia metric."""
    return a ^ b


@dataclass
class KadLookupResult:
    """Outcome of one iterative lookup."""

    closest: List[str]
    hops: int            # number of query rounds
    rpcs: int            # total FIND_NODE RPCs issued
    value: Optional[bytes] = None


class KademliaNode(SimNode):
    """One Kademlia peer: k-buckets plus a local store."""

    def __init__(self, name: str, k: int = 8) -> None:
        super().__init__(name)
        self.kad_id = kad_id(name)
        self.k = k
        #: bucket index -> node names, least-recently-seen first
        self.buckets: List[List[str]] = [[] for _ in range(ID_BITS)]
        self.store: Dict[str, bytes] = {}

    def bucket_index(self, other_id: int) -> int:
        """Which bucket an id belongs in (shared-prefix length based)."""
        distance = xor_distance(self.kad_id, other_id)
        if distance == 0:
            raise OverlayError("node cannot bucket itself")
        return distance.bit_length() - 1

    def observe(self, other: str) -> None:
        """Record contact with a peer (move-to-tail, bounded bucket)."""
        other_id = kad_id(other)
        if other_id == self.kad_id:
            return
        bucket = self.buckets[self.bucket_index(other_id)]
        if other in bucket:
            bucket.remove(other)
            bucket.append(other)
        elif len(bucket) < self.k:
            bucket.append(other)
        # A full bucket drops the newcomer (classic Kademlia favours
        # long-lived contacts).

    def closest_known(self, target_id: int, count: int) -> List[str]:
        """The ``count`` known peers closest to ``target_id``."""
        known = [name for bucket in self.buckets for name in bucket]
        known.sort(key=lambda name: xor_distance(kad_id(name), target_id))
        return known[:count]


class KademliaOverlay:
    """A Kademlia overlay over a :class:`repro.fabric.Fabric`.

    As with :class:`~repro.overlay.chord.ChordRing`, pass the fabric;
    bare-``SimNetwork`` and hand-threaded ``channel=`` callers get a
    :class:`~repro.exceptions.ReproDeprecationWarning` for one release.
    """

    def __init__(self, fabric: Any, k: int = 8,
                 alpha: int = 3, channel: Optional[Any] = None) -> None:
        from repro.fabric import coerce_fabric  # avoids an import cycle
        self.fabric = coerce_fabric(fabric, "KademliaOverlay")
        self.network = self.fabric.network
        self.k = k
        self.alpha = alpha
        #: the :class:`repro.faults.ReliableChannel` for FIND/STORE RPCs
        #: (from the fabric) — Kademlia's shortlist already routes around
        #: unresponsive peers, so retries alone recover most transient-
        #: loss failures.
        self.channel = self.fabric.channel
        if channel is not None:
            warnings.warn(
                "KademliaOverlay(channel=...) is deprecated; build the "
                "channel into the Fabric (Fabric.create(resilient=True))",
                ReproDeprecationWarning, stacklevel=2)
            self.channel = channel
        self.nodes: Dict[str, KademliaNode] = {}

    def _rpc(self, src: str, dst: str, kind: str,
             deadline: Optional[Deadline] = None) -> Tuple[bool, float]:
        """One accounted RPC, through the resilient channel when wired."""
        if self.channel is not None:
            return self.channel.call(src, dst, kind=kind, deadline=deadline)
        return self.network.rpc(src, dst, kind=kind)

    def add_node(self, name: str) -> KademliaNode:
        """Register a peer."""
        node = KademliaNode(name, k=self.k)
        self.nodes[name] = node
        self.network.register(node)
        if self.fabric.adversary is not None:
            self.fabric.adversary.enroll(name, "kad")
        return node

    def bootstrap(self) -> None:
        """Populate every node's buckets from the global membership.

        Equivalent to each node having completed its join lookups; gives the
        steady-state routing tables the lookup experiments assume.
        """
        names = list(self.nodes)
        for node in self.nodes.values():
            for other in names:
                node.observe(other)

    # -- iterative lookup ---------------------------------------------------------

    def lookup(self, start: str, key: str, find_value: bool = False,
               deadline: Optional[Deadline] = None,
               distrust: Optional[frozenset] = None,
               visited: Optional[Set[str]] = None,
               _single_path: bool = False) -> KadLookupResult:
        """Iterative FIND_NODE / FIND_VALUE from ``start`` toward ``key``.

        ``alpha`` concurrent queries per round (charged as RPCs); terminates
        when a round fails to improve the closest-seen distance, like the
        original protocol.

        Latency model: rounds are dependent (each consumes the previous
        round's answers) and always sum; *within* a round the alpha
        queries are the protocol's namesake concurrency, so under
        :attr:`Simulator.concurrent` each round is a parallel span and
        its queries roll up as max.

        As in :meth:`ChordRing.lookup <repro.overlay.chord.ChordRing
        .lookup>`, a ``deadline`` (minted from the fabric's overload
        config when not supplied) is checked before every FIND RPC and
        decremented by the time already spent; exhaustion raises
        :class:`~repro.exceptions.DeadlineExceededError`.

        Adversary semantics mirror the Chord lookup's: compromised
        responders may withhold answers or return forged closest-node
        sets, and with a defense configured the public entry point
        delegates to :func:`~repro.adversary.defense
        .defended_kad_lookup` (``distrust`` / ``visited`` /
        ``_single_path`` are its per-path re-entry surface).
        """
        adv = self.fabric.adversary
        if adv is not None and adv.config.defense is not None \
                and not _single_path:
            from repro.adversary.defense import defended_kad_lookup
            return defended_kad_lookup(self, start, key,
                                       find_value=find_value,
                                       deadline=deadline)
        defense = adv.config.defense if adv is not None else None
        target_id = kad_id(key)
        origin = self.nodes.get(start)
        if origin is None or not origin.online:
            raise LookupError_(f"start node {start!r} is not online")
        if deadline is None and self.fabric.overload is not None:
            deadline = self.fabric.overload.mint_deadline(self.network.sim.now)
        shortlist = origin.closest_known(target_id, self.k)
        if not shortlist:
            raise LookupError_("empty routing table; bootstrap first")
        view = None
        if self.fabric.membership is not None:
            view = self.fabric.membership.view_of(start)
        #: self-reported ids a bare client has no way to verify — real
        #: Kademlia nodes learn peer ids from routing responses, so a
        #: forged (chosen) id ranks wherever the forger placed it.  With
        #: certification the forged answers never get this far, and an
        #: honest claim's certified id equals the true position, so the
        #: map stays empty (and with no adversary it always is —
        #: ``eff_id`` then reduces to ``kad_id``, byte-identical).
        claimed_ids: Dict[str, int] = {}

        def eff_id(name: str) -> int:
            return claimed_ids.get(name) if name in claimed_ids \
                else kad_id(name)

        with self.network.tracer.span("kad.lookup", key=key,
                                      start=start) as span:
            queried: Set[str] = set()
            hops = 0
            rpcs = 0
            spent = 0.0
            best = min(xor_distance(eff_id(n), target_id) for n in shortlist)
            while True:
                # Peers the start's membership view has confirmed dead
                # are skipped without paying for the probe; XOR distance
                # still decides the order among the believed-alive.
                candidates = [n for n in shortlist if n not in queried
                              and (view is None or not view.is_dead(n))
                              and (not distrust or n not in distrust)]
                candidates.sort(
                    key=lambda n: xor_distance(eff_id(n), target_id))
                batch = candidates[:self.alpha]
                if not batch:
                    break
                hops += 1
                improved = False
                round_span = (self.network.tracer.span(
                                  "kad.round", parallel=True, round=hops)
                              if self.network.sim.concurrent
                              else contextlib.nullcontext(None))
                with round_span:
                    for peer_name in batch:
                        if deadline is not None and deadline.expired(
                                self.network.sim.now, spent):
                            self.network.stats.deadline_expired += 1
                            self.network.metrics.inc(
                                "overload.deadline_expired", kind="kad_find")
                            raise DeadlineExceededError(
                                f"kad lookup for {key!r} ran out of budget "
                                f"after {rpcs} RPCs ({spent:.3f}s spent)")
                        queried.add(peer_name)
                        if visited is not None:
                            visited.add(peer_name)
                        ok, t = self._rpc(
                            start, peer_name, kind="kad_find",
                            deadline=None if deadline is None
                            else deadline.minus(spent))
                        spent += t
                        rpcs += 1
                        if not ok:
                            continue
                        answer = None
                        if adv is not None and peer_name != start:
                            answer = adv.kad_answer(peer_name, key)
                        if answer is not None and answer.drop:
                            continue  # response withheld (transport paid)
                        peer = self.nodes[peer_name]
                        if find_value and key in peer.store \
                                and answer is None:
                            span.set_attr("rounds", hops)
                            span.set_attr("rpcs", rpcs)
                            span.set_attr("hit", True)
                            return KadLookupResult(
                                closest=sorted(
                                    shortlist,
                                    key=lambda n: xor_distance(
                                        eff_id(n), target_id))[:self.k],
                                hops=hops, rpcs=rpcs,
                                value=peer.store[key])
                        if answer is not None:
                            if defense is not None \
                                    and defense.certified_ids \
                                    and any(not adv.check_claim("kad", n,
                                                                cid)
                                            for n, cid in answer.claims):
                                adv.flag_cert_liar(peer_name,
                                                   overlay="kad")
                                continue  # discard the forged answer
                            learned_names = []
                            for n, cid in answer.claims:
                                learned_names.append(n)
                                if cid != kad_id(n):
                                    claimed_ids[n] = cid
                        else:
                            learned_names = peer.closest_known(target_id,
                                                               self.k)
                        for learned in learned_names:
                            if learned not in shortlist:
                                shortlist.append(learned)
                                d = xor_distance(eff_id(learned),
                                                 target_id)
                                if d < best:
                                    best = d
                                    improved = True
                shortlist.sort(
                    key=lambda n: xor_distance(eff_id(n), target_id))
                shortlist = shortlist[:self.k * 2]
                if not improved and all(n in queried
                                        for n in shortlist[:self.k]):
                    break
            span.set_attr("rounds", hops)
            span.set_attr("rpcs", rpcs)
            return KadLookupResult(
                closest=shortlist[:self.k], hops=hops, rpcs=rpcs)

    # -- storage --------------------------------------------------------------------

    def put(self, start: str, key: str, value: bytes) -> KadLookupResult:
        """Store on the k closest live nodes to the key."""
        with self.network.tracer.span("kad.put", key=key, start=start):
            return self._put_inner(start, key, value)

    def _put_inner(self, start: str, key: str,
                   value: bytes) -> KadLookupResult:
        result = self.lookup(start, key)
        stored = 0
        for name in result.closest:
            node = self.nodes[name]
            if not node.online:
                continue
            ok, _ = self._rpc(start, name, kind="kad_store")
            if self.channel is not None and not ok:
                continue  # the resilient path only counts confirmed stores
            node.store[key] = value
            stored += 1
        if stored == 0:
            raise StorageError(f"no live node accepted key {key!r}")
        return result

    def get(self, start: str, key: str) -> Tuple[bytes, KadLookupResult]:
        """FIND_VALUE; raises :class:`StorageError` when nothing holds it."""
        with self.network.tracer.span("kad.get", key=key, start=start):
            result = self.lookup(start, key, find_value=True)
            if result.value is None:
                raise StorageError(f"key {key!r} not found in the overlay")
            return result.value, result
