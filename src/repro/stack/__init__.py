"""The unified content-protection pipeline (the paper's Table I as code).

``repro.stack`` turns the survey's classification into an executable
architecture: every DOSN model routes its post/read path through an
explicit :class:`ProtectionStack` of
:class:`IntegrityLayer` → :class:`AclLayer` → :class:`PlacementLayer`
(→ :class:`IndexLayer`), declares the composition as a
:class:`SystemSpec`, and registers it so the Table I matrix can be
regenerated from code (:mod:`repro.stack.table1`).

Quick tour::

    from repro.stack import (AclLayer, ContentItem, LayerSpec,
                             PlacementLayer, ProtectionStack, SystemSpec,
                             register_system)

    SPEC = register_system(SystemSpec(
        name="toy", overlay="one box",
        layers=(LayerSpec("acl", "symmetric",
                          table1_rows=("Symmetric key encryption",)),
                LayerSpec("placement", "dict"))))

    store = {}
    stack = ProtectionStack([
        AclLayer.from_scheme(scheme, "friends", spec=SPEC.layers[0]),
        PlacementLayer(post=lambda i: store.__setitem__(i.cid, i.payload),
                       read=lambda i: i.meta.update(rec=store[i.cid]),
                       spec=SPEC.layers[1]),
    ], spec=SPEC)
    stack.post(ContentItem(author="alice", cid="c1", payload=b"hi"))
"""

from repro.stack.pipeline import (AclLayer, ContentItem, IndexLayer,
                                  IntegrityLayer, Layer, PlacementLayer,
                                  ProtectionStack)
from repro.stack.registry import (MechanismEntry, mechanisms,
                                  register_mechanism, register_properties)
from repro.stack.spec import (LAYER_KINDS, LayerSpec, SystemSpec,
                              register_system, registered_systems,
                              unregister_system)

__all__ = [
    "AclLayer", "ContentItem", "IndexLayer", "IntegrityLayer",
    "LAYER_KINDS", "Layer", "LayerSpec", "MechanismEntry",
    "PlacementLayer", "ProtectionStack", "SystemSpec", "mechanisms",
    "register_mechanism", "register_properties", "register_system",
    "registered_systems", "unregister_system",
]
