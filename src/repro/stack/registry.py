"""The Table I mechanism registry: rows claim their implementations.

The paper's Table I maps each security aspect/solution row to concrete
mechanisms.  Implementation modules register themselves here — an ACL
scheme through its :class:`~repro.acl.base.SchemeProperties`, anything
else through :func:`register_mechanism` — and the matrix generator
(:mod:`repro.stack.table1`) reads the registry instead of a
hand-maintained list in the benchmark.  Adding a mechanism therefore
means one registration at its definition site, and it appears in the
regenerated matrix everywhere.

This module deliberately imports nothing from the implementation
packages, so they can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MechanismEntry", "register_mechanism", "register_properties",
           "mechanisms", "unregister_mechanism"]


@dataclass(frozen=True)
class MechanismEntry:
    """One implementation claiming one Table I row."""

    category: str
    row: str
    #: display name (class/function name for real implementations)
    name: str
    #: the implementing object itself (class, function, or scheme class)
    implementation: object = None
    detail: str = ""


#: (category, row) -> entries, in registration order
_MECHANISMS: Dict[Tuple[str, str], List[MechanismEntry]] = {}


def register_mechanism(category: str, row: str, *implementations: object,
                       detail: str = "") -> None:
    """Claim a Table I row for one or more implementations (idempotent).

    Repeated registration of the same name under the same row is a
    no-op, so modules can register at import time without guarding
    against re-imports.
    """
    entries = _MECHANISMS.setdefault((category, row), [])
    for impl in implementations:
        name = getattr(impl, "__name__", str(impl))
        if any(entry.name == name for entry in entries):
            continue
        entries.append(MechanismEntry(category=category, row=row, name=name,
                                      implementation=impl, detail=detail))


def register_properties(properties, *implementations: object) -> None:
    """Register via a :class:`~repro.acl.base.SchemeProperties` record.

    The properties object names its own category/row; extra
    ``implementations`` default to the properties' scheme name.
    """
    if implementations:
        register_mechanism(properties.table1_category, properties.table1_row,
                           *implementations)
    else:
        register_mechanism(properties.table1_category, properties.table1_row,
                           properties.scheme_name)


def unregister_mechanism(category: str, row: str, name: str) -> None:
    """Remove one named entry from a row (test helper; no-op when absent)."""
    entries = _MECHANISMS.get((category, row))
    if entries is not None:
        entries[:] = [entry for entry in entries if entry.name != name]


def mechanisms() -> Dict[Tuple[str, str], List[MechanismEntry]]:
    """A copy of the registry ((category, row) -> entries)."""
    return {key: list(entries) for key, entries in _MECHANISMS.items()}
