"""The ProtectionStack: one composable content pipeline for every DOSN.

Before this module, each system model hand-rolled its own
encrypt → integrity-protect → place → index sequence inline in ``post()``
and the inverse in ``read()``.  The stack makes that sequence explicit:

* :class:`IntegrityLayer` — signatures / envelopes / hash chains / comment
  keys (:mod:`repro.integrity`);
* :class:`AclLayer`      — the access-control cryptography (any
  :class:`~repro.acl.base.AccessControlScheme`, or a system's own hybrid);
* :class:`PlacementLayer` — where ciphertext physically goes (a
  :class:`~repro.dosn.storage.StorageBackend`, an overlay publish path,
  mirrors, storekeepers, …);
* :class:`IndexLayer`    — search indexing hooks (:mod:`repro.search`).

A post flows through the layers in declaration order; a read runs them in
reverse (fetch, then decrypt, then verify).  Each layer can open a span
on the owning :class:`~repro.fabric.Fabric`'s tracer and bump a counter
on its metrics registry, so per-layer cost breakdowns (experiment E13
style) come for free wherever the stack is installed.

The stack is built *against* a declarative
:class:`~repro.stack.spec.SystemSpec` and refuses a layer sequence that
does not match it — the classification the Table I generator reads and
the pipeline that actually runs are machine-checked to agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.exceptions import AccessDeniedError, ReproError
from repro.obs.trace import NOOP_TRACER
from repro.stack.spec import LAYER_KINDS, LayerSpec, SystemSpec

__all__ = ["AclLayer", "ContentItem", "IndexLayer", "IntegrityLayer",
           "Layer", "PlacementLayer", "ProtectionStack"]

#: layer hook signature: mutate the item in place
Hook = Callable[["ContentItem"], None]


@dataclass
class ContentItem:
    """The unit of work flowing through a :class:`ProtectionStack`.

    ``payload`` is the evolving wire representation: plaintext going into
    the ACL layer on the write path, ciphertext coming out of it, the
    fetched blob on the read path.  Layers stash whatever else they need
    (headers, epochs, fetch results) in ``meta``; the read path leaves
    its final verified/decrypted value in ``result``.
    """

    author: str
    cid: Optional[str] = None
    payload: Optional[bytes] = None
    reader: Optional[str] = None
    recipients: Tuple[str, ...] = ()
    meta: Dict[str, object] = field(default_factory=dict)
    result: object = None


class Layer:
    """One stage of the pipeline, wrapping a post hook and a read hook.

    Systems express their genuinely unique behavior as the hooks; the
    layer contributes the uniform parts — its declared
    :class:`~repro.stack.spec.LayerSpec` (capabilities for the Table I
    generator), optional tracer span names, and metrics accounting.
    ``span_post``/``span_read`` default to ``None`` (no span) so call
    sites with committed trace baselines keep their exact span trees.
    """

    kind: str = "layer"

    def __init__(self, post: Optional[Hook] = None,
                 read: Optional[Hook] = None, *,
                 spec: Optional[LayerSpec] = None, mechanism: str = "",
                 span_post: Optional[str] = None,
                 span_read: Optional[str] = None,
                 span_attrs: Optional[Dict[str, object]] = None) -> None:
        if spec is not None and spec.kind != self.kind:
            raise ReproError(
                f"layer kind {self.kind!r} built from a {spec.kind!r} spec")
        self._post = post
        self._read = read
        self.spec = spec
        self.mechanism = mechanism or (spec.mechanism if spec else "")
        self.span_post = span_post
        self.span_read = span_read
        self.span_attrs = dict(span_attrs or {})

    @property
    def table1_rows(self) -> Tuple[str, ...]:
        """Table I rows this layer instantiates (from its spec)."""
        return self.spec.table1_rows if self.spec is not None else ()

    def on_post(self, item: ContentItem) -> None:
        """Write-path transformation (no-op when no hook was given)."""
        if self._post is not None:
            self._post(item)

    def on_read(self, item: ContentItem) -> None:
        """Read-path transformation (no-op when no hook was given)."""
        if self._read is not None:
            self._read(item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.mechanism!r})"


class IntegrityLayer(Layer):
    """Owner/content/history/relation integrity (:mod:`repro.integrity`)."""

    kind = "integrity"


class AclLayer(Layer):
    """Access-control cryptography: who can read what (Section III)."""

    kind = "acl"

    @classmethod
    def from_scheme(cls, scheme, group: str, **kwargs) -> "AclLayer":
        """Wrap any :class:`~repro.acl.base.AccessControlScheme`.

        The scheme keeps custody of its ciphertext records (they are
        scheme-specific objects, not bytes), so the layer stores under
        the item's content id and reads back as ``item.reader`` — the
        scheme's own cryptography enforces membership, exactly as in
        experiment E3.  This is the one-edit plug-in point: any scheme
        in ``repro.acl.SCHEME_REGISTRY`` becomes a stack layer here.
        """

        def protect(item: ContentItem) -> None:
            scheme.publish(group, item.cid, item.payload)
            item.meta["acl_scheme"] = scheme.scheme_name

        def unprotect(item: ContentItem) -> None:
            if item.reader is None:
                raise AccessDeniedError("read without a reader identity")
            item.payload = scheme.read(group, item.cid, item.reader)

        kwargs.setdefault("mechanism", scheme.scheme_name)
        return cls(post=protect, read=unprotect, **kwargs)


class PlacementLayer(Layer):
    """Where (cipher)text physically lives: backend/overlay/mirrors."""

    kind = "placement"

    @classmethod
    def from_backend(cls, backend, **kwargs) -> "PlacementLayer":
        """Wrap a :class:`~repro.dosn.storage.StorageBackend`."""

        def store(item: ContentItem) -> None:
            backend.put(item.author, item.cid, item.payload,
                        recipients=list(item.recipients))

        def retrieve(item: ContentItem) -> None:
            item.payload = backend.get(item.reader, item.cid)

        return cls(post=store, read=retrieve, **kwargs)


class IndexLayer(Layer):
    """Search-index hooks (:mod:`repro.search`): make content findable."""

    kind = "index"

    @classmethod
    def from_index(cls, index, text_of: Callable[[ContentItem], str],
                   **kwargs) -> "IndexLayer":
        """Wrap a :class:`~repro.search.index.SearchIndex`.

        Indexing happens on the write path only (reads go through the
        index's own ``search``); a blinded index keeps the hook
        compatible with the Section V content-privacy rows.
        """

        def add(item: ContentItem) -> None:
            index.add_document(item.cid, text_of(item))

        kwargs.setdefault(
            "mechanism", "blinded index" if index.blinded else "plaintext "
            "index")
        return cls(post=add, **kwargs)


class ProtectionStack:
    """An ordered layer pipeline with spec validation and instrumentation.

    ``post(item)`` runs the layers in declaration order; ``read(item)``
    runs them in reverse.  ``only=`` restricts a run to a subset of layer
    kinds — the feed path uses it to fetch through the placement layer
    first and open blobs (ACL + integrity) per item afterwards.
    """

    def __init__(self, layers: Sequence[Layer], *,
                 spec: Optional[SystemSpec] = None, tracer=None,
                 metrics=None, name: str = "") -> None:
        self.layers: List[Layer] = list(layers)
        self.spec = spec
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics
        self.name = name or (spec.name if spec is not None else "stack")
        for layer in self.layers:
            if layer.kind not in LAYER_KINDS:
                raise ReproError(f"unknown layer kind {layer.kind!r}")
        if spec is not None:
            declared = [(ls.kind, ls.mechanism) for ls in spec.layers]
            actual = [(l.kind, l.mechanism) for l in self.layers]
            if declared != actual:
                raise ReproError(
                    f"stack for {spec.name!r} does not match its declared "
                    f"spec: declared {declared}, built {actual}")

    # -- running the pipeline ------------------------------------------------

    def post(self, item: ContentItem,
             only: Optional[Iterable[str]] = None) -> ContentItem:
        """Run the write path: integrity → acl → placement → index."""
        return self._run(item, "post", self.layers, only)

    def read(self, item: ContentItem,
             only: Optional[Iterable[str]] = None) -> ContentItem:
        """Run the read path: the same layers, in reverse."""
        return self._run(item, "read", list(reversed(self.layers)), only)

    def _run(self, item: ContentItem, op: str, order: Sequence[Layer],
             only: Optional[Iterable[str]]) -> ContentItem:
        wanted = None if only is None else frozenset(only)
        for layer in order:
            if wanted is not None and layer.kind not in wanted:
                continue
            hook = layer.on_post if op == "post" else layer.on_read
            span = layer.span_post if op == "post" else layer.span_read
            if span is not None:
                with self.tracer.span(span, **layer.span_attrs):
                    hook(item)
            else:
                hook(item)
            if self.metrics is not None:
                self.metrics.counter("stack_layer_ops_total",
                                     system=self.name, layer=layer.kind,
                                     op=op).inc()
        return item

    # -- introspection -------------------------------------------------------

    def layer(self, kind: str) -> Layer:
        """The first layer of ``kind``; raises when the stack has none."""
        for layer in self.layers:
            if layer.kind == kind:
                return layer
        raise ReproError(f"stack {self.name!r} has no {kind!r} layer")

    def has_layer(self, kind: str) -> bool:
        """Whether any layer of ``kind`` is installed."""
        return any(layer.kind == kind for layer in self.layers)

    def capabilities(self) -> Tuple[str, ...]:
        """Table I rows instantiated by this stack, in layer order."""
        rows: List[str] = []
        for layer in self.layers:
            for row in layer.table1_rows:
                if row not in rows:
                    rows.append(row)
        return tuple(rows)

    def describe(self) -> List[Tuple[str, str, str]]:
        """(kind, mechanism, rows) rows for docs and debugging."""
        return [(layer.kind, layer.mechanism,
                 ", ".join(layer.table1_rows)) for layer in self.layers]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = "+".join(layer.kind for layer in self.layers)
        return f"ProtectionStack({self.name}: {kinds})"
