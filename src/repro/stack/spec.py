"""Declarative system specifications: Table I as data, not prose.

The paper's contribution is a classification — which privacy, integrity
and search mechanism each surveyed DOSN composes.  A :class:`SystemSpec`
is that classification for one system, written down next to the code that
implements it: an ordered tuple of :class:`LayerSpec` entries, each
naming the mechanism and the Table I row(s) it instantiates.

Every runnable system model (``repro.systems.*`` and
:class:`repro.dosn.api.DosnNetwork`) registers its spec here at import
time, and builds its runtime :class:`~repro.stack.pipeline.ProtectionStack`
*against* the spec — the stack constructor refuses a layer sequence that
does not match, so the declared classification and the executed pipeline
cannot drift apart.  The Table I matrix artifact
(``docs/table1_matrix.md``) is generated from this registry by
:mod:`repro.stack.table1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ReproError

__all__ = ["LAYER_KINDS", "LayerSpec", "SystemSpec", "register_system",
           "registered_systems", "unregister_system"]

#: The pipeline order every stack follows on the write path; the read
#: path runs the same layers in reverse.
LAYER_KINDS = ("integrity", "acl", "placement", "index")


@dataclass(frozen=True)
class LayerSpec:
    """One declared layer of a system's content pipeline."""

    #: one of :data:`LAYER_KINDS`
    kind: str
    #: the mechanism, e.g. ``"CP-ABE hybrid encryption"``
    mechanism: str
    #: Table I row(s) this layer instantiates (empty for pure transport)
    table1_rows: Tuple[str, ...] = ()
    #: free-form elaboration for docs / the generated matrix
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ReproError(
                f"unknown layer kind {self.kind!r}; pick from {LAYER_KINDS}")


@dataclass(frozen=True)
class SystemSpec:
    """A system's whole content pipeline, declaratively."""

    name: str
    #: the surveyed system's citation tag, e.g. ``"Nilizadeh et al. [18]"``
    citation: str = ""
    #: the overlay/organization carrying the content (Section II)
    overlay: str = ""
    #: write-path layer order; the read path is the reverse
    layers: Tuple[LayerSpec, ...] = ()
    notes: str = ""

    def layer(self, kind: str) -> Optional[LayerSpec]:
        """The first declared layer of ``kind`` (None when absent)."""
        for layer in self.layers:
            if layer.kind == kind:
                return layer
        return None

    def rows_covered(self) -> Tuple[str, ...]:
        """Table I rows this system instantiates, in layer order."""
        rows = []
        for layer in self.layers:
            for row in layer.table1_rows:
                if row not in rows:
                    rows.append(row)
        return tuple(rows)


#: system name -> its registered spec, in registration order
SYSTEM_REGISTRY: Dict[str, SystemSpec] = {}


def register_system(spec: SystemSpec) -> SystemSpec:
    """Register a system's spec (idempotent for identical re-registration).

    Registering a *different* spec under an existing name is an error —
    the registry is the single source of truth for the generated Table I
    matrix, so silent replacement would let the matrix lie.
    """
    existing = SYSTEM_REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(
            f"system {spec.name!r} is already registered with a different "
            "spec; unregister_system() first if this is intentional")
    SYSTEM_REGISTRY[spec.name] = spec
    return spec


def registered_systems() -> Dict[str, SystemSpec]:
    """A copy of the registry (name -> spec, registration order)."""
    return dict(SYSTEM_REGISTRY)


def unregister_system(name: str) -> None:
    """Remove a spec (test helper; no-op when absent)."""
    SYSTEM_REGISTRY.pop(name, None)
