"""Synthetic social graphs with trust weights.

Substitute for the real OSN populations the surveyed systems ran on:
Barabási–Albert (preferential attachment — the heavy-tailed degree
distributions measured for real OSNs by Mislove et al., the paper's [1]),
Watts–Strogatz (high clustering, small world) and Erdős–Rényi (the
no-structure control).  All generators relabel nodes to ``user<N>`` strings
and can attach per-edge trust weights for the Section V-D experiments.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Optional

import networkx as nx

from repro.exceptions import ReproError


def _relabel(graph: nx.Graph, prefix: str) -> nx.Graph:
    return nx.relabel_nodes(graph, {n: f"{prefix}{n}" for n in graph.nodes})


def social_graph(n: int, kind: str = "ba", seed: int = 0,
                 prefix: str = "user", **params) -> nx.Graph:
    """Generate a social graph of ``n`` users.

    ``kind``: ``"ba"`` (Barabási–Albert, param ``m`` edges per newcomer,
    default 3), ``"ws"`` (Watts–Strogatz, params ``k`` neighbours default 6
    and rewiring ``p`` default 0.1), or ``"er"`` (Erdős–Rényi, param ``p``
    default chosen for mean degree ~6).
    """
    if n < 4:
        raise ReproError("social graphs need at least 4 users")
    if kind == "ba":
        graph = nx.barabasi_albert_graph(n, params.get("m", 3), seed=seed)
    elif kind == "ws":
        graph = nx.watts_strogatz_graph(n, params.get("k", 6),
                                        params.get("p", 0.1), seed=seed)
    elif kind == "er":
        p = params.get("p", min(1.0, 6.0 / (n - 1)))
        graph = nx.erdos_renyi_graph(n, p, seed=seed)
        # Keep experiments simple: work on the giant component.
        if not nx.is_connected(graph):
            giant = max(nx.connected_components(graph), key=len)
            graph = graph.subgraph(giant).copy()
    else:
        raise ReproError(f"unknown graph kind {kind!r}")
    return _relabel(graph, prefix)


def attach_trust(graph: nx.Graph, seed: int = 0, low: float = 0.3,
                 high: float = 1.0) -> nx.Graph:
    """Attach uniform-random trust weights in ``(low, high]`` to all edges."""
    if not 0.0 < low <= high <= 1.0:
        raise ReproError("trust bounds must satisfy 0 < low <= high <= 1")
    rng = _random.Random(seed)
    for a, b in graph.edges:
        graph[a][b]["trust"] = rng.uniform(low, high)
    return graph


def degree_popularity(graph: nx.Graph) -> Dict[str, float]:
    """Degree-normalized popularity scores (the trust-ranking signal)."""
    max_degree = max((graph.degree(n) for n in graph), default=1) or 1
    return {str(n): graph.degree(n) / max_degree for n in graph}
