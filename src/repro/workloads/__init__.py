"""Synthetic workload generators (graphs, activity traces, trust weights).

Substitutes for the proprietary OSN data the surveyed systems were
evaluated on; see DESIGN.md's substitution table.
"""

from repro.workloads.graphs import (attach_trust, degree_popularity,
                                    social_graph)
from repro.workloads.traces import (PostEvent, ReadEvent, generate_posts,
                                    generate_reads, generate_text,
                                    popularity_histogram, zipf_choice)

__all__ = [
    "PostEvent", "ReadEvent", "attach_trust", "degree_popularity",
    "generate_posts", "generate_reads", "generate_text",
    "popularity_histogram", "social_graph", "zipf_choice",
]
