"""Activity traces: who posts/reads what, when.

Synthetic stand-ins for the production traces the surveyed systems were
evaluated on.  Two well-established empirical regularities are modelled,
because the experiments' conclusions depend on them:

* **Zipfian content popularity** — a few posts attract most reads (drives
  the hybrid overlay's cache-hit results, experiment E5);
* **heavy-tailed user activity** — post counts proportional to degree
  (high-degree users post and are read more).

Everything is generated from an explicit seed.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ReproError

_WORDS = (
    "party photo travel music privacy crypto football recipe meeting "
    "birthday holiday concert project garden movie book coffee bike "
    "research deadline weekend beach snow family friends network social "
    "distributed security integrity search").split()

_TAGS = ("#party", "#privacy", "#crypto", "#travel", "#music", "#football",
         "#research", "#weekend", "#news", "#dosn")


@dataclass(frozen=True)
class PostEvent:
    """One authored post in the trace."""

    time: float
    author: str
    text: str
    tags: Tuple[str, ...]


@dataclass(frozen=True)
class ReadEvent:
    """One read: ``reader`` fetches the post at ``post_index``."""

    time: float
    reader: str
    post_index: int


def zipf_choice(rng: _random.Random, n: int, exponent: float = 1.0) -> int:
    """Sample an index in ``[0, n)`` with Zipfian weights (rank 0 hottest)."""
    if n < 1:
        raise ReproError("zipf_choice needs n >= 1")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    total = sum(weights)
    u = rng.random() * total
    acc = 0.0
    for index, w in enumerate(weights):
        acc += w
        if u <= acc:
            return index
    return n - 1


def generate_text(rng: _random.Random, words: int = 8) -> str:
    """A short synthetic post body."""
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def generate_posts(graph: nx.Graph, count: int, seed: int = 0,
                   duration: float = 86400.0) -> List[PostEvent]:
    """``count`` posts over ``duration`` seconds, authors ~ degree."""
    rng = _random.Random(seed)
    users = sorted(str(n) for n in graph.nodes)
    weights = [graph.degree(u) + 1 for u in users]
    events = []
    for _ in range(count):
        author = rng.choices(users, weights=weights, k=1)[0]
        tags = tuple(rng.sample(_TAGS, rng.randint(0, 2)))
        events.append(PostEvent(
            time=rng.uniform(0, duration), author=author,
            text=generate_text(rng), tags=tags))
    events.sort(key=lambda e: e.time)
    return events


def generate_reads(posts: Sequence[PostEvent], graph: nx.Graph, count: int,
                   seed: int = 0, zipf_exponent: float = 1.0,
                   duration: float = 86400.0) -> List[ReadEvent]:
    """``count`` reads with Zipfian post popularity.

    Readers are drawn uniformly; each read targets a post chosen by
    popularity rank (rank order is a seed-fixed shuffle so "hot" posts are
    arbitrary, not simply the oldest).
    """
    if not posts:
        raise ReproError("need posts before generating reads")
    rng = _random.Random(seed + 1)
    users = sorted(str(n) for n in graph.nodes)
    rank_to_post = list(range(len(posts)))
    rng.shuffle(rank_to_post)
    events = []
    for _ in range(count):
        rank = zipf_choice(rng, len(posts), zipf_exponent)
        events.append(ReadEvent(
            time=rng.uniform(0, duration), reader=rng.choice(users),
            post_index=rank_to_post[rank]))
    events.sort(key=lambda e: e.time)
    return events


def popularity_histogram(reads: Sequence[ReadEvent],
                         post_count: int) -> List[int]:
    """Reads per post index (the Zipf curve, for workload validation)."""
    histogram = [0] * post_count
    for event in reads:
        histogram[event.post_index] += 1
    return histogram
