"""The secure-lookup defense stack: certification, voting, quarantine.

Three classic defenses against routing-layer adversaries, composed:

* **node-ID certification** (:mod:`repro.crypto.node_cert`) — every
  routing response's id claim is checked against a verified certificate
  binding ``id = H(pubkey)``; chosen IDs and unverifiable pubkeys are
  *provable* lies and the responder is quarantined on the spot;
* **redundant disjoint-path lookups** — :func:`defended_chord_lookup`
  runs ``successor_redundancy`` independent Chord paths (each path
  distrusts the peers earlier paths routed through, forcing route
  diversity) and settles the owner by majority vote;
  :func:`defended_kad_lookup` does the same with ``disjoint_paths``
  Kademlia lookups, voting on closest-set membership.  Path latencies
  settle through the concurrent kernel (:func:`~repro.overlay.simulator
  .gather`): the redundancy costs the *max* path latency under
  ``Simulator(concurrent=True)`` and the serial sum otherwise, exactly
  like every other fan-out in the codebase;
* **quarantine** (:class:`Quarantine`) — provably-lying peers are banned
  from route selection immediately; certified-but-lying peers (true id,
  wrong answer — certification cannot catch them) are banned after
  ``suspect_threshold`` lost votes.  Bans feed the SWIM membership
  service (quarantined peers sort last in health-aware candidate
  ordering) and the circuit-breaker path (calls to them fast-fail until
  a half-open probe) when those are wired on the fabric.

The overlays delegate here from their public ``lookup`` entry points
whenever ``fabric.adversary`` carries a :class:`~repro.adversary.config
.DefenseConfig`, so quorum writes (coordinator routing) and every other
lookup consumer get the defended path with no call-site changes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set

from repro.exceptions import LookupError_
from repro.overlay.simulator import gather

__all__ = ["Quarantine", "defended_chord_lookup", "defended_kad_lookup"]


class Quarantine:
    """Bans for lying peers, fed into membership and the breaker."""

    def __init__(self, defense, fabric) -> None:
        self.defense = defense
        self.fabric = fabric
        #: peers banned from route selection (never from being resolved
        #: *to* — a quarantined peer can still be a key's true owner)
        self.banned: Set[str] = set()
        #: lost disjoint-path votes per certified-but-lying peer
        self.suspicion: Dict[str, int] = {}
        #: why each banned peer was banned ("cert" / "outvoted")
        self.reasons: Dict[str, str] = {}

    def flag_provable(self, peer: str, reason: str) -> None:
        """A provable lie (failed certificate check): ban immediately."""
        if peer not in self.banned:
            self._ban(peer, reason)

    def flag_suspect(self, peer: str) -> None:
        """A lost majority vote; ban after ``suspect_threshold`` strikes."""
        if peer in self.banned:
            return
        strikes = self.suspicion.get(peer, 0) + 1
        self.suspicion[peer] = strikes
        if strikes >= self.defense.suspect_threshold:
            self._ban(peer, "outvoted")

    def _ban(self, peer: str, reason: str) -> None:
        self.banned.add(peer)
        self.reasons[peer] = reason
        self.fabric.metrics.inc("adversary.quarantined", reason=reason)
        membership = self.fabric.membership
        if membership is not None:
            membership.quarantine(peer)
        channel = self.fabric.channel
        if channel is not None and channel.breaker is not None:
            channel.breaker.quarantine(peer, self.fabric.sim.now)

    def order_last(self, peers: List[str]) -> List[str]:
        """Stable reorder with banned peers last (read-path helper)."""
        if not self.banned:
            return peers
        return sorted(peers, key=lambda p: p in self.banned)


def defended_chord_lookup(ring, start: str, key: str, max_hops: int = 64,
                          deadline=None):
    """Redundant Chord lookup: disjoint paths + majority successor vote.

    Up to ``2 * successor_redundancy + 1`` single-path lookups run until
    ``successor_redundancy`` of them produce an owner claim; each path
    distrusts the intermediate responders of earlier paths (plus every
    quarantined peer), so a single compromised region cannot answer all
    of them.  With certified ids the vote is *successor-verified* first:
    a node's ring position is ``H(pubkey)`` and unforgeable, so no
    certified node can sit between the key and its true owner — any vote
    naming a certifiably looser owner than the tightest claim on the
    table is a lie and is discarded before the majority settles (the
    surviving votes necessarily agree; ties among equal claims break to
    the smallest name).  Without certification the raw majority decides.
    Losing resolvers are flagged as suspects (once per lookup each).
    The returned :class:`~repro.overlay.chord.LookupResult` carries the
    winning path's hop count and the :func:`gather`-settled latency of
    all voting paths.
    """
    from repro.overlay.chord import _SPACE, LookupResult, chord_id

    adv = ring.fabric.adversary
    defense = adv.config.defense
    metrics = ring.network.metrics
    sim = ring.network.sim
    votes_needed = defense.successor_redundancy
    banned = adv.quarantine.banned if adv.quarantine is not None \
        else frozenset()
    used: Set[str] = set()
    votes = []
    futures = []
    failed_paths = 0
    attempts = 0
    with ring.network.tracer.span("chord.lookup.defended", key=key,
                                  start=start,
                                  parallel=sim.concurrent) as span:
        while attempts < 2 * votes_needed + 1 and len(votes) < votes_needed:
            attempts += 1
            visited: Set[str] = set()
            try:
                result = ring.lookup(
                    start, key, max_hops=max_hops, deadline=deadline,
                    distrust=frozenset(used | banned), visited=visited,
                    _single_path=True)
                votes.append(result)
                futures.append(sim.future(result.rtt))
            except LookupError_:
                failed_paths += 1
            used.update(visited)
        if not votes:
            raise LookupError_(
                f"defended lookup for {key!r}: all {attempts} disjoint "
                "paths failed")
        fanout = gather(futures)
        eligible = votes
        if defense.certified_ids:
            # Successor verification: certified positions are
            # unforgeable, so the owner claim with the smallest
            # clockwise distance from the key is the only one that can
            # be the key's successor — every looser claim is discarded
            # as a lie before the majority settles.
            key_id = chord_id(key)
            tight = min((chord_id(v.owner) - key_id) % _SPACE
                        for v in votes)
            eligible = [v for v in votes
                        if (chord_id(v.owner) - key_id) % _SPACE == tight]
        tally = Counter(vote.owner for vote in eligible)
        top = max(tally.values())
        winner = min(name for name, count in tally.items() if count == top)
        if all(vote.owner == winner for vote in votes):
            metrics.inc("lookup.disjoint_agreement", overlay="chord")
        else:
            metrics.inc("lookup.poisoned", overlay="chord",
                        cause="outvoted")
            liars = {vote.resolver for vote in votes
                     if vote.owner != winner and vote.resolver is not None}
            for liar in sorted(liars):
                adv.flag_outvoted(liar, overlay="chord")
        winning = next(vote for vote in votes if vote.owner == winner)
        span.set_attr("paths", len(votes) + failed_paths)
        span.set_attr("agreement", top / len(votes))
        span.set_attr("owner", winner)
        return LookupResult(
            owner=winner, hops=winning.hops, rtt=fanout.elapsed,
            failed_probes=failed_paths + sum(v.failed_probes
                                             for v in votes),
            resolver=winning.resolver)


def defended_kad_lookup(overlay, start: str, key: str,
                        find_value: bool = False, deadline=None):
    """``d`` disjoint Kademlia lookups, closest-set membership vote.

    With certified ids the paths' closest sets are *unioned*: a learned
    name is a certified-real node at an unforgeable position the client
    re-sorts by true XOR distance, so knowledge only one path surfaced
    (bounded k-buckets make closeness knowledge scarce) is kept, and a
    forged set can only add far-away accomplices that sort last.
    Without certification a candidate makes the defended set only when
    a majority of the successful paths report it — a forged set from
    one captured path is outvoted.  Top-candidate disagreement between
    paths is counted either way (``lookup.disjoint_agreement`` /
    ``lookup.poisoned``).  With ``find_value`` the settled set is then
    probed in XOR order for the value (compromised holders withhold it;
    honest ones serve it), so a single honest live holder suffices.
    """
    from repro.overlay.kademlia import KadLookupResult, kad_id, xor_distance

    adv = overlay.fabric.adversary
    defense = adv.config.defense
    metrics = overlay.network.metrics
    target_id = kad_id(key)
    paths_wanted = defense.disjoint_paths
    banned = adv.quarantine.banned if adv.quarantine is not None \
        else frozenset()
    used: Set[str] = set()
    paths = []
    failed_paths = 0
    attempts = 0
    with overlay.network.tracer.span(
            "kad.lookup.defended", key=key, start=start,
            parallel=overlay.network.sim.concurrent) as span:
        while attempts < 2 * paths_wanted + 1 and len(paths) < paths_wanted:
            attempts += 1
            visited: Set[str] = set()
            try:
                result = overlay.lookup(
                    start, key, find_value=False, deadline=deadline,
                    distrust=frozenset(used | banned), visited=visited,
                    _single_path=True)
                paths.append(result)
            except LookupError_:
                failed_paths += 1
            used.update(visited)
        if not paths:
            raise LookupError_(
                f"defended kad lookup for {key!r}: all {attempts} "
                "disjoint paths failed")
        if defense.certified_ids:
            agreed = sorted(
                set().union(*(set(path.closest) for path in paths)),
                key=lambda n: xor_distance(kad_id(n), target_id))
        else:
            majority = len(paths) // 2 + 1
            tally: Counter = Counter()
            for path in paths:
                for name in set(path.closest):
                    tally[name] += 1
            agreed = sorted(
                (name for name, count in tally.items()
                 if count >= majority),
                key=lambda n: xor_distance(kad_id(n), target_id))
        closest = agreed[:overlay.k]
        tops = {path.closest[0] for path in paths if path.closest}
        if len(tops) <= 1:
            metrics.inc("lookup.disjoint_agreement", overlay="kad")
        else:
            metrics.inc("lookup.poisoned", overlay="kad", cause="outvoted")
        value = None
        rpcs = sum(path.rpcs for path in paths)
        if find_value:
            for name in closest:
                node = overlay.nodes.get(name)
                if node is None or not node.online:
                    continue
                ok, _ = overlay._rpc(start, name, kind="kad_fetch")
                rpcs += 1
                if not ok or adv.withholds(name, key):
                    continue
                if key in node.store:
                    value = node.store[key]
                    break
        span.set_attr("paths", len(paths) + failed_paths)
        span.set_attr("agreed", len(agreed))
        return KadLookupResult(
            closest=closest, hops=max(path.hops for path in paths),
            rpcs=rpcs, value=value)
