"""Configuration surface for the routing-layer adversary (PR-10 pattern).

Mirrors :class:`repro.faults.OverloadConfig` and
:class:`repro.membership.MembershipConfig`: a frozen dataclass passed to
``Fabric.create(adversary=...)`` / ``DosnConfig(adversary=...)``, where
``None`` keeps every legacy code path — and every RNG stream —
byte-identical.  Unlike those subsystems the adversary never splits an
RNG at all: every attack decision is derived by hashing
``(salt, responder, key)``, so even an *installed* adversary moves no
draw on the simulator's stream (the property tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.exceptions import ReproError

#: Malicious routing behaviors a compromised peer may exhibit.
#: ``misroute`` — hand the lookup to an accomplice instead of the honest
#: next hop; ``eclipse`` — claim an accomplice owns the key (forged
#: closest-node / successor claim); ``drop`` — swallow the query;
#: ``chosen_id`` — present a forged node ID adjacent to the key on
#: eclipse/misroute claims (what ID certification exists to kill).
BEHAVIORS: Tuple[str, ...] = ("misroute", "eclipse", "drop", "chosen_id")


@dataclass(frozen=True)
class DefenseConfig:
    """The secure-lookup defense stack (all on by default).

    ``certified_ids`` checks every routing response's node-ID claim
    against a verified certificate binding ``id = H(pubkey)``;
    ``disjoint_paths`` / ``successor_redundancy`` run that many
    independent lookup paths (Kademlia / Chord respectively) and settle
    the answer by majority vote on the concurrent kernel; ``quarantine``
    bans provably-lying peers (and repeatedly-outvoted ones, after
    ``suspect_threshold`` strikes) from routing, feeding the ban into
    SWIM membership and the circuit breaker when those are wired.
    """

    certified_ids: bool = True
    disjoint_paths: int = 3
    successor_redundancy: int = 3
    quarantine: bool = True
    suspect_threshold: int = 2

    def __post_init__(self) -> None:
        if self.disjoint_paths < 1:
            raise ReproError("disjoint_paths must be >= 1")
        if self.successor_redundancy < 1:
            raise ReproError("successor_redundancy must be >= 1")
        if self.suspect_threshold < 1:
            raise ReproError("suspect_threshold must be >= 1")


@dataclass(frozen=True)
class AdversaryConfig:
    """An active routing adversary controlling a fraction of the peers.

    Which peers are compromised is a deterministic hash threshold over
    ``(seed_salt, name)`` — stable under roster order and independent of
    every RNG stream.  ``compromised`` overrides the threshold with an
    explicit set (contract tests pick their attackers).  ``attack_rate``
    is the per-(responder, key) probability (hash-derived, not drawn)
    that a compromised responder misbehaves on that query.  ``defense``
    is the :class:`DefenseConfig` to fight back with; ``None`` leaves
    lookups bare — the E19 baseline.
    """

    fraction: float = 0.2
    behaviors: Tuple[str, ...] = BEHAVIORS
    attack_rate: float = 1.0
    defense: Optional[DefenseConfig] = None
    seed_salt: int = 0
    compromised: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ReproError("fraction must be in [0, 1)")
        if not 0.0 < self.attack_rate <= 1.0:
            raise ReproError("attack_rate must be in (0, 1]")
        unknown = set(self.behaviors) - set(BEHAVIORS)
        if unknown:
            raise ReproError(
                f"unknown behaviors {sorted(unknown)}; pick from {BEHAVIORS}")
        if not self.behaviors:
            raise ReproError("behaviors must not be empty")
