"""Random-walk sampling over a social graph (shared walk engine).

Extracted from ``extensions/sybil.py::degree_cut_detection`` so the walk
core lives with the adversary subsystem: the SybilGuard-family intuition
(short random walks from an honest verifier rarely cross a thin
attack-edge cut) is the *trust-graph* face of the same adversary whose
*routing* face lives in :mod:`repro.adversary.model`.

Draw-order contract: :func:`random_walk_landings` consumes exactly one
``rng.choice`` per step per walk, in walk-major order — identical to the
pre-extraction loop, so E9's committed tables regenerate byte-for-byte.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Iterable, Mapping

__all__ = ["random_walk_landings", "region_mass"]


def random_walk_landings(graph, origin: str, total_walks: int,
                         walk_length: int,
                         rng: _random.Random) -> Dict[str, int]:
    """Endpoint tally of ``total_walks`` walks of ``walk_length`` steps.

    ``graph`` is anything with ``.nodes`` and ``.neighbors(node)`` (a
    ``networkx.Graph`` in practice; duck-typed so this module needs no
    graph-library import).  A walk stranded on an isolated node ends
    early and lands where it stopped.
    """
    landings = {node: 0 for node in graph.nodes}
    for _ in range(total_walks):
        node = origin
        for _ in range(walk_length):
            neighbors = list(graph.neighbors(node))
            if not neighbors:
                break
            node = rng.choice(neighbors)
        landings[node] += 1
    return landings


def region_mass(landings: Mapping[str, int], region: Iterable[str],
                total_walks: int) -> float:
    """Fraction of walk endpoints inside ``region``."""
    region_set = set(region)
    return sum(count for node, count in landings.items()
               if node in region_set) / total_walks
