"""The active routing adversary: who is compromised, and what they answer.

The paper's Section VI threat: a malicious *participant* inside the
overlay.  :class:`AdversaryModel` attaches to a
:class:`repro.fabric.Fabric` (``fabric.adversary``) and interposes on the
answers the overlays consume from queried peers:

* **misroute** — a compromised Chord responder hands the lookup to an
  accomplice instead of its honest closest-preceding finger;
* **eclipse** — the responder claims an accomplice is the key's owner
  (Chord) or returns a closest-node set made of accomplices (Kademlia);
* **drop** — the responder swallows the query (the transport already
  succeeded; the answer never comes);
* **chosen_id** — eclipse/misroute claims carry a forged node ID placed
  adjacent to the key, the attack node-ID certification exists to kill.

Determinism contract (stricter than the PR 5/7/9 subsystems): *every*
adversary decision — who is compromised, whether a query is attacked,
which behavior, which accomplice — is derived by hashing, never drawn
from an RNG.  Installing an adversary therefore moves **zero** draws on
any stream, bare and defended cells of one experiment face the *same*
attack pattern, and ``adversary=None`` is trivially byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.adversary.config import AdversaryConfig
from repro.adversary.defense import Quarantine
from repro.crypto.node_cert import IdCertifier
from repro.exceptions import SimulationError

__all__ = ["AdversaryModel", "ChordAnswer", "KadAnswer"]

#: id-space width per overlay (matches chord.M_BITS / kademlia.ID_BITS)
_SPACE_BITS = {"chord": 32, "kad": 64}

#: the overlays' position-derivation prefixes (chord_id / kad_id) — the
#: certifier signs these derivations so certified ids equal ring
#: positions (see :mod:`repro.crypto.node_cert`)
_ID_PREFIX = {"chord": b"repro/chord/", "kad": b"repro/kad/"}


def _overlay_id(space: str, name: str) -> int:
    """The overlay position of ``name`` (same hash the overlays use)."""
    digest = hashlib.sha256(_ID_PREFIX[space] + name.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (1 << _SPACE_BITS[space])

#: A routing claim: ``(node name, claimed certified id)``.
Claim = Tuple[str, int]


@dataclass(frozen=True)
class ChordAnswer:
    """A compromised Chord responder's (forged) answer."""

    drop: bool = False
    final: Optional[Claim] = None      # "this node owns the key"
    next_hop: Optional[Claim] = None   # "route through this node"


@dataclass(frozen=True)
class KadAnswer:
    """A compromised Kademlia responder's (forged) answer."""

    drop: bool = False
    claims: Tuple[Claim, ...] = ()     # forged closest-node set


def _unit(salt: int, *parts: str) -> float:
    """A deterministic value in [0, 1) from hashed parts (no RNG)."""
    data = "/".join((str(salt),) + parts).encode()
    digest = hashlib.sha256(b"repro/adversary/" + data).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class AdversaryModel:
    """Adversary state for one fabric: rosters, certifiers, quarantine."""

    def __init__(self, fabric, config: AdversaryConfig) -> None:
        self.fabric = fabric
        self.config = config
        self.network = fabric.network
        self.metrics = fabric.metrics
        #: per-overlay certificate registries (independent id spaces)
        self.certifiers: Dict[str, IdCertifier] = {}
        #: per-overlay enrolled peers, in enrollment order
        self.rosters: Dict[str, List[str]] = {}
        self._compromised: Dict[str, bool] = {}
        self._accomplices: Dict[str, List[str]] = {}
        self.quarantine: Optional[Quarantine] = None
        if config.defense is not None and config.defense.quarantine:
            self.quarantine = Quarantine(config.defense, fabric)
        fabric.attach_adversary(self)

    # -- roster & compromise ---------------------------------------------------

    def enroll(self, name: str, space: str) -> None:
        """Register an overlay peer (called by the overlays' add_node)."""
        if space not in _SPACE_BITS:
            raise SimulationError(f"unknown overlay id space {space!r}")
        roster = self.rosters.setdefault(space, [])
        if name not in roster:
            roster.append(name)
            self._accomplices.pop(space, None)

    def compromised(self, name: str) -> bool:
        """Whether ``name`` is adversary-controlled (hash threshold)."""
        cached = self._compromised.get(name)
        if cached is None:
            if self.config.compromised is not None:
                cached = name in self.config.compromised
            else:
                cached = _unit(self.config.seed_salt, "compromise",
                               name) < self.config.fraction
            self._compromised[name] = cached
        return cached

    def accomplices(self, space: str) -> List[str]:
        """Compromised peers of one overlay, sorted (stable targets)."""
        cached = self._accomplices.get(space)
        if cached is None:
            cached = sorted(n for n in self.rosters.get(space, ())
                            if self.compromised(n))
            self._accomplices[space] = cached
        return cached

    # -- certificates ----------------------------------------------------------

    def certifier(self, space: str) -> IdCertifier:
        certifier = self.certifiers.get(space)
        if certifier is None:
            prefix = _ID_PREFIX[space]
            certifier = IdCertifier(
                bits=_SPACE_BITS[space],
                material_of=lambda name: prefix + name.encode())
            self.certifiers[space] = certifier
        return certifier

    def certified_id(self, space: str, name: str) -> int:
        """The certified id a peer presents with an honest claim."""
        return self.certifier(space).certified_id(name)

    def check_claim(self, space: str, name: str, claimed_id: int) -> bool:
        """Verify one routing response's node-id claim."""
        return self.certifier(space).check(name, claimed_id)

    # -- attack decisions (all hash-derived) -----------------------------------

    def _behavior(self, responder: str, key: str,
                  menu: Tuple[str, ...]) -> Optional[str]:
        """Which behavior (if any) this responder shows for this key."""
        if not self.compromised(responder):
            return None
        salt = self.config.seed_salt
        if _unit(salt, "attack", responder, key) >= self.config.attack_rate:
            return None
        active = [b for b in menu if b in self.config.behaviors]
        if not active:
            return None
        index = int(_unit(salt, "behavior", responder, key) * len(active))
        return active[index]

    def _chooses_id(self, responder: str, key: str) -> bool:
        if "chosen_id" not in self.config.behaviors:
            return False
        return _unit(self.config.seed_salt, "chosen", responder, key) < 0.5

    def _forged_id(self, space: str, key: str, rank: int = 0) -> int:
        """A chosen id placed right at the key's position (rank'th best).

        Chord closeness is clockwise (smallest id >= key wins), Kademlia
        closeness is XOR — either way a bare client ranks the forged id
        ahead of every honest node.
        """
        target = _overlay_id(space, key)
        if space == "chord":
            return (target + rank) % (1 << _SPACE_BITS[space])
        return target ^ rank

    def _pick_accomplice(self, space: str, responder: str,
                         key: str) -> Optional[str]:
        pool = [a for a in self.accomplices(space) if a != responder]
        if not pool:
            return None
        index = int(_unit(self.config.seed_salt, "accomplice",
                          responder, key) * len(pool))
        return pool[index]

    def withholds(self, responder: str, key: str) -> bool:
        """Whether a compromised holder denies having the value."""
        return self._behavior(responder, key,
                              ("misroute", "eclipse", "drop")) is not None

    # -- per-overlay forged answers --------------------------------------------

    def chord_answer(self, responder: str, key: str
                     ) -> Optional[ChordAnswer]:
        """What a compromised Chord responder answers (None = honest)."""
        behavior = self._behavior(responder, key,
                                  ("misroute", "eclipse", "drop"))
        if behavior is None:
            return None
        if behavior == "drop":
            self.metrics.inc("adversary.drops", overlay="chord")
            return ChordAnswer(drop=True)
        accomplice = self._pick_accomplice("chord", responder, key)
        if behavior == "misroute" and accomplice is None:
            behavior = "eclipse"    # lone attacker: claim the key itself
        target = accomplice if behavior == "misroute" \
            else (accomplice or responder)
        if self._chooses_id(responder, key):
            claimed = self._forged_id("chord", key)
        else:
            claimed = self.certified_id("chord", target)
        if behavior == "misroute":
            self.network.stats.misrouted += 1
            self.metrics.inc("adversary.misroutes", overlay="chord")
            return ChordAnswer(next_hop=(target, claimed))
        self.network.stats.forged_routes += 1
        self.metrics.inc("adversary.forged_routes", overlay="chord")
        return ChordAnswer(final=(target, claimed))

    def kad_answer(self, responder: str, key: str
                   ) -> Optional[KadAnswer]:
        """What a compromised Kademlia responder answers (None = honest).

        Misroute and eclipse collapse to the same Kademlia attack — a
        forged closest-node set of accomplices — because XOR routing has
        no next-hop pointer distinct from the candidate set.
        """
        behavior = self._behavior(responder, key,
                                  ("misroute", "eclipse", "drop"))
        if behavior is None:
            return None
        if behavior == "drop":
            self.metrics.inc("adversary.drops", overlay="kad")
            return KadAnswer(drop=True)
        pool = [a for a in self.accomplices("kad") if a != responder] \
            or [responder]
        chosen = self._chooses_id(responder, key)
        claims = []
        for rank, name in enumerate(pool[:8]):
            claimed = self._forged_id("kad", key, rank) if chosen \
                else self.certified_id("kad", name)
            claims.append((name, claimed))
        self.network.stats.forged_routes += 1
        self.metrics.inc("adversary.forged_routes", overlay="kad")
        return KadAnswer(claims=tuple(claims))

    # -- quarantine feed -------------------------------------------------------

    def flag_cert_liar(self, peer: str, overlay: str) -> None:
        """A provably forged claim (failed certificate check)."""
        self.metrics.inc("lookup.poisoned", overlay=overlay, cause="cert")
        if self.quarantine is not None:
            self.quarantine.flag_provable(peer, reason="cert")

    def flag_outvoted(self, peer: str, overlay: str) -> None:
        """A certified-but-lying resolver lost a disjoint-path vote."""
        if self.quarantine is not None:
            self.quarantine.flag_suspect(peer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        banned = len(self.quarantine.banned) if self.quarantine else 0
        return (f"AdversaryModel(fraction={self.config.fraction}, "
                f"defended={self.config.defense is not None}, "
                f"quarantined={banned})")
