"""Routing-layer adversary model and secure-lookup defenses (Section VI).

The paper's security analysis assumes overlay participants can be
malicious; this package reproduces what a compromised *routing* peer can
do — misroute, eclipse, drop, present chosen node IDs — and the classic
defense stack: certified node IDs (``id = H(pubkey)``), redundant
disjoint-path lookups with majority voting, and quarantine of
provably-lying peers.

Install via ``Fabric.create(seed, adversary=AdversaryConfig(...))`` or
``DosnConfig(adversary=...)``; ``adversary=None`` keeps every legacy
code path and RNG stream byte-identical (and even an installed adversary
draws nothing: all decisions are hash-derived).  Experiment E19
(``benchmarks/bench_adversary.py``) sweeps the compromised fraction and
measures bare vs. defended lookup correctness; see ``docs/adversary.md``
for the threat-model table.
"""

from repro.adversary.config import (BEHAVIORS, AdversaryConfig,
                                    DefenseConfig)
from repro.adversary.defense import (Quarantine, defended_chord_lookup,
                                     defended_kad_lookup)
from repro.adversary.model import AdversaryModel, ChordAnswer, KadAnswer
from repro.adversary.walks import random_walk_landings, region_mass

__all__ = [
    "BEHAVIORS",
    "AdversaryConfig",
    "DefenseConfig",
    "AdversaryModel",
    "ChordAnswer",
    "KadAnswer",
    "Quarantine",
    "defended_chord_lookup",
    "defended_kad_lookup",
    "random_walk_landings",
    "region_mass",
]
