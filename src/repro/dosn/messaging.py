"""End-to-end secure direct messaging between DOSN peers.

Composes the substrate pieces the paper treats separately into the private
channel every DOSN needs: Diffie–Hellman pairwise keys (Section III),
signed envelopes carrying owner/content/relation/freshness integrity
(Section IV), and store-and-forward mailboxes for offline recipients
(the availability concern of Section I).

Wire protection is layered exactly as a deployment would:

1. the plaintext is sealed in a :class:`~repro.integrity.envelope.MessageEnvelope`
   (signature binds sender, recipient, sequence number and timestamp);
2. the serialized envelope is AEAD-encrypted under a direction-specific
   key derived from the DH shared secret — the mailbox host (a replica,
   i.e. a "small provider") sees only ciphertext and routing metadata;
3. the receiver decrypts, verifies the signature, checks the recipient
   binding, and enforces strictly increasing sequence numbers (replay and
   reorder detection).
"""

from __future__ import annotations

import json
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto import dh
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher
from repro.dosn.identity import Identity, KeyRegistry
from repro.exceptions import (AccessDeniedError, DecryptionError,
                              IntegrityError)
from repro.integrity.envelope import MessageEnvelope, open_envelope, seal


def _direction_key(shared: bytes, sender: str, recipient: str) -> bytes:
    """A per-direction channel key (A->B and B->A keys differ)."""
    return hkdf(shared, 32,
                info=b"repro/msg/" + sender.encode() + b">"
                + recipient.encode())


def _encode_envelope(envelope: MessageEnvelope) -> bytes:
    return json.dumps({
        "sender": envelope.sender,
        "recipient": envelope.recipient,
        "body": envelope.body.hex(),
        "issued_at": envelope.issued_at,
        "expires_at": envelope.expires_at,
        "sequence": envelope.sequence,
        "signature": list(envelope.signature),
    }).encode()


def _decode_envelope(raw: bytes) -> MessageEnvelope:
    data = json.loads(raw.decode())
    return MessageEnvelope(
        sender=data["sender"], recipient=data["recipient"],
        body=bytes.fromhex(data["body"]), issued_at=data["issued_at"],
        expires_at=data["expires_at"], sequence=data["sequence"],
        signature=tuple(data["signature"]))


@dataclass
class SealedMessage:
    """What travels / sits in a mailbox: routing metadata + ciphertext."""

    sender: str
    recipient: str
    ciphertext: bytes


class Messenger:
    """One user's messaging endpoint."""

    def __init__(self, identity: Identity, registry: KeyRegistry,
                 level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.identity = identity
        self.registry = registry
        self.rng = rng or _random.Random(f"msg/{identity.name}")
        self._dh = dh.generate_keypair(level, self.rng)
        #: peer -> DH shared secret bytes
        self._shared: Dict[str, bytes] = {}
        self._send_sequence: Dict[str, int] = {}
        self._recv_sequence: Dict[str, int] = {}

    @property
    def name(self) -> str:
        """The endpoint's user name."""
        return self.identity.name

    @property
    def dh_public(self) -> int:
        """The DH public value exchanged during channel establishment."""
        return self._dh.public

    def establish_channel(self, other: "Messenger") -> None:
        """Mutual channel setup (models the out-of-band friend handshake)."""
        self._shared[other.name] = dh.shared_secret(self._dh,
                                                    other.dh_public)
        other._shared[self.name] = dh.shared_secret(other._dh,
                                                    self.dh_public)

    # -- sending ---------------------------------------------------------------

    def compose(self, recipient: str, body: bytes, now: float,
                expires_at: Optional[float] = None) -> SealedMessage:
        """Seal, sign and encrypt one direct message."""
        shared = self._shared.get(recipient)
        if shared is None:
            raise AccessDeniedError(
                f"no channel with {recipient!r}; establish one first")
        sequence = self._send_sequence.get(recipient, 0)
        self._send_sequence[recipient] = sequence + 1
        envelope = seal(self.identity.signer, self.name, body,
                        issued_at=now, recipient=recipient,
                        expires_at=expires_at, sequence=sequence,
                        rng=self.rng)
        key = _direction_key(shared, self.name, recipient)
        ciphertext = AuthenticatedCipher(key).encrypt(
            _encode_envelope(envelope), rng=self.rng)
        return SealedMessage(sender=self.name, recipient=recipient,
                             ciphertext=ciphertext)

    # -- receiving --------------------------------------------------------------

    def open(self, message: SealedMessage,
             now: Optional[float] = None) -> bytes:
        """Decrypt and fully verify an inbound message.

        Raises :class:`IntegrityError` on signature/relation/freshness
        violations and on replayed or reordered sequence numbers;
        :class:`AccessDeniedError` when the ciphertext isn't for us.
        """
        if message.recipient != self.name:
            raise AccessDeniedError(
                f"message addressed to {message.recipient!r}, "
                f"we are {self.name!r}")
        shared = self._shared.get(message.sender)
        if shared is None:
            raise AccessDeniedError(
                f"no channel with {message.sender!r}")
        key = _direction_key(shared, message.sender, self.name)
        try:
            raw = AuthenticatedCipher(key).decrypt(message.ciphertext)
        except DecryptionError:
            raise IntegrityError(
                "channel decryption failed: tampered ciphertext or "
                "mismatched channel keys")
        envelope = _decode_envelope(raw)
        sender_key = self.registry.get(message.sender).verify_key
        body = open_envelope(envelope, sender_key,
                             expected_recipient=self.name, now=now)
        expected = self._recv_sequence.get(message.sender, 0)
        if envelope.sequence < expected:
            raise IntegrityError(
                f"replayed message: sequence {envelope.sequence} already "
                f"consumed (expected >= {expected})")
        if envelope.sequence > expected:
            raise IntegrityError(
                f"sequence gap: got {envelope.sequence}, expected "
                f"{expected} — messages suppressed or reordered")
        self._recv_sequence[message.sender] = expected + 1
        return body


class MailboxService:
    """Store-and-forward delivery for offline recipients.

    The mailbox host is an untrusted "small provider": it sees sender,
    recipient and timing (the metadata the paper warns about) but only
    ciphertext bodies — :meth:`host_view` exports exactly that for the
    exposure experiments.
    """

    def __init__(self) -> None:
        self._boxes: Dict[str, List[SealedMessage]] = {}
        self._log: List[Tuple[str, str, int]] = []

    def deliver(self, message: SealedMessage) -> None:
        """Queue a message for its recipient."""
        self._boxes.setdefault(message.recipient, []).append(message)
        self._log.append((message.sender, message.recipient,
                          len(message.ciphertext)))

    def drain(self, recipient: str) -> List[SealedMessage]:
        """Hand over and clear the recipient's queue (in arrival order)."""
        return self._boxes.pop(recipient, [])

    def host_view(self) -> List[Tuple[str, str, int]]:
        """The metadata the mailbox host observes: (from, to, size)."""
        return list(self._log)
