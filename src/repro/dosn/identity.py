"""User identities and out-of-band key distribution.

Section IV-A of the paper: "For the signature verification, it is important
to know the valid verification key of each signer.  One solution is
distributing proper keys out-of-band like physical meeting or transferring
the keys via e-mail."

:class:`Identity` bundles a user's signing (Schnorr) and encryption
(ElGamal) keypairs; :class:`KeyRegistry` models the out-of-band channel:
whoever holds the registry has *authenticated* public keys (the trust
anchor every integrity mechanism in Section IV builds on).  The registry
stores only public halves — private keys never leave the identity object.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto import elgamal
from repro.crypto.hashing import hexdigest
from repro.crypto.signatures import (SchnorrPublicKey, SchnorrSigner,
                                     generate_schnorr_keypair)
from repro.exceptions import CryptoError, InvalidKeyError


@dataclass
class Identity:
    """A user's complete key material (keep private!)."""

    name: str
    signer: SchnorrSigner
    encryption_key: elgamal.ElGamalPrivateKey

    @property
    def verify_key(self) -> SchnorrPublicKey:
        """The public signature-verification key."""
        return self.signer.public_key

    @property
    def public_encryption_key(self) -> elgamal.ElGamalPublicKey:
        """The public encryption key."""
        return self.encryption_key.public_key

    def fingerprint(self) -> str:
        """A short stable fingerprint of both public keys.

        This is what two users would compare at the "physical meeting" the
        paper mentions.
        """
        material = (self.verify_key.to_bytes()
                    + self.public_encryption_key.to_bytes())
        return hexdigest(material)[:16]


def create_identity(name: str, level: str = "TOY",
                    rng: Optional[_random.Random] = None) -> Identity:
    """Generate a fresh identity at the given parameter level."""
    rng = rng or _random.Random(name)
    return Identity(
        name=name,
        signer=generate_schnorr_keypair(level, rng),
        encryption_key=elgamal.generate_keypair(level, rng=rng))


@dataclass(frozen=True)
class PublicIdentity:
    """The registry-visible half of an identity."""

    name: str
    verify_key: SchnorrPublicKey
    encryption_key: elgamal.ElGamalPublicKey
    fingerprint: str


class KeyRegistry:
    """The out-of-band authenticated key store.

    In deployment terms this is "we met in person / exchanged keys by
    e-mail"; in the simulation it is a trusted map.  It deliberately has no
    networked interface — consulting it is free and unobservable, matching
    the paper's assumption that the key-distribution problem is solved
    out-of-band.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, PublicIdentity] = {}

    def register(self, identity: Identity) -> PublicIdentity:
        """Publish the public half of an identity (idempotent, no rebind)."""
        existing = self._entries.get(identity.name)
        public = PublicIdentity(
            name=identity.name, verify_key=identity.verify_key,
            encryption_key=identity.public_encryption_key,
            fingerprint=identity.fingerprint())
        if existing is not None:
            if existing.fingerprint != public.fingerprint:
                raise InvalidKeyError(
                    f"identity {identity.name!r} already registered with a "
                    "different key (impersonation attempt?)")
            return existing
        self._entries[identity.name] = public
        return public

    def get(self, name: str) -> PublicIdentity:
        """Authenticated public keys of a user."""
        try:
            return self._entries[name]
        except KeyError:
            raise CryptoError(
                f"no out-of-band key material for {name!r}; users must "
                "exchange keys before verifying each other")

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
