"""The centralized provider baseline and exposure metering.

Section II-A of the paper lists what the central provider can do with its
global view (data retention, employee browsing, selling of data); Section I
states the thesis this library quantifies: "DOSNs reduce the security risks
of one big central provider by distributing them among small ones."

:class:`CentralProvider` is the baseline: it stores everything, sees every
social edge and every read.  :class:`ExposureReport` is the common metric
all architectures are scored with in experiment E8:

* ``content_view``   — fraction of all content objects the observer stores
  *readably* (encrypted blobs don't count);
* ``graph_view``     — fraction of social edges it observes;
* ``metadata_view``  — fraction of content objects it stores at all
  (ciphertexts still leak size/timing metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import StorageError


@dataclass
class ExposureReport:
    """One observer's view, as fractions of the global totals."""

    observer: str
    content_view: float
    metadata_view: float
    graph_view: float

    def dominates(self, other: "ExposureReport") -> bool:
        """Strictly more exposure on every axis."""
        return (self.content_view >= other.content_view
                and self.metadata_view >= other.metadata_view
                and self.graph_view >= other.graph_view
                and (self.content_view, self.metadata_view, self.graph_view)
                != (other.content_view, other.metadata_view,
                    other.graph_view))


class CentralProvider:
    """The omniscient centralized OSN service (Facebook-shaped baseline).

    Also models the Section II-A abuses so examples/tests can demonstrate
    them: :meth:`delete` only *pretends* to delete (data retention),
    :meth:`employee_browse` reads anything, and :meth:`sell_profile`
    exports a user's accumulated dossier.
    """

    def __init__(self, name: str = "provider") -> None:
        self.name = name
        #: content id -> (author, payload, deleted?)
        self._content: Dict[str, Tuple[str, bytes, bool]] = {}
        self.observed_edges: Set[Tuple[str, str]] = set()
        self.read_log: List[Tuple[str, str]] = []  # (reader, content id)

    # -- the normal service interface ---------------------------------------

    def store(self, author: str, cid: str, payload: bytes) -> None:
        """Accept an upload (the provider sees author + full payload)."""
        self._content[cid] = (author, payload, False)

    def fetch(self, reader: str, cid: str) -> bytes:
        """Serve a read (and log who read what)."""
        entry = self._content.get(cid)
        if entry is None or entry[2]:
            raise StorageError(f"{cid!r} does not exist (or was 'deleted')")
        self.read_log.append((reader, cid))
        return entry[1]

    def stored_ids(self) -> Set[str]:
        """Every content id physically on the provider's disks.

        Includes 'deleted' content — data retention means the bytes are
        still there, which is exactly what exposure accounting must see.
        """
        return set(self._content)

    def record_edge(self, a: str, b: str) -> None:
        """Observe a friendship (providers see the whole social graph)."""
        self.observed_edges.add((min(a, b), max(a, b)))

    def delete(self, cid: str) -> None:
        """'Delete' content — data retention means only the flag flips."""
        author, payload, _ = self._content[cid]
        self._content[cid] = (author, payload, True)

    # -- the Section II-A abuses ------------------------------------------------

    def employee_browse(self, cid: str) -> bytes:
        """Full access regardless of deletion flags or any user setting."""
        try:
            return self._content[cid][1]
        except KeyError:
            raise StorageError(f"{cid!r} was never uploaded")

    def sell_profile(self, user: str) -> Dict[str, object]:
        """The dossier an advertiser would buy."""
        owned = {cid: payload for cid, (author, payload, _)
                 in self._content.items() if author == user}
        friends = {b if a == user else a
                   for a, b in self.observed_edges if user in (a, b)}
        reads = [cid for reader, cid in self.read_log if reader == user]
        return {"content": owned, "friends": friends, "read_history": reads}

    # -- exposure metering ---------------------------------------------------------

    def exposure(self, total_content: int, total_edges: int,
                 readable_ids: Optional[Set[str]] = None) -> ExposureReport:
        """Score this provider's view against global totals.

        ``readable_ids`` restricts which stored objects count as readable
        (pass the set of *unencrypted* ids when users applied Section III
        protections; default: everything it stores is readable).
        """
        stored = {cid for cid, (_, _, deleted) in self._content.items()}
        readable = stored if readable_ids is None \
            else stored & readable_ids
        return ExposureReport(
            observer=self.name,
            content_view=(len(readable) / total_content
                          if total_content else 0.0),
            metadata_view=(len(stored) / total_content
                           if total_content else 0.0),
            graph_view=(len(self.observed_edges) / total_edges
                        if total_edges else 0.0))
