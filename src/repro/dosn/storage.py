"""Uniform storage backends over the Section II architectures.

:class:`DosnNetwork` talks to storage through one interface so the same
social workload can run against a centralized provider, a DHT, or a server
federation — which is what makes the E8 exposure comparison apples-to-
apples.  Every backend records *who ends up storing what*, feeding the
exposure reports.

The read side of the protocol has three entry points:

* :meth:`StorageBackend.get` — one blob, raising on failure (the
  original surface, unchanged);
* :meth:`StorageBackend.fetch_blob` — one blob *with provenance*
  (:class:`FetchedBlob`: source, quorum version, degraded flag), which
  is what the typed :class:`~repro.dosn.results.ReadResult` API reads;
* :meth:`StorageBackend.get_many` — the batched path: one call for a
  whole feed's worth of cids, returning exceptions as values so one
  unreachable replica cannot fail the batch.  The default implementation
  is a sequential fallback over :meth:`fetch_blob`; the DHT and
  federation backends override it to coalesce routing per holder
  (one route / one batch RPC per holder instead of one per cid).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dosn.provider import CentralProvider, ExposureReport
from repro.exceptions import ReproError, StorageError
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork


@dataclass
class FetchedBlob:
    """One retrieved blob plus where (and how trustworthily) it came from.

    ``source`` is ``"quorum"`` when a verified quorum read produced the
    bytes and ``"bare"`` for first-responder/provider reads; the cache
    layer stamps ``"cache"`` at the API level, never here.  ``degraded``
    marks a below-quorum verified read
    (:attr:`repro.storage2.ReplicationConfig.degraded_reads`): the bytes
    verified, the freshness guarantee did not.
    """

    blob: bytes
    source: str = "bare"
    degraded: bool = False
    version: Optional[int] = None


class StorageBackend(abc.ABC):
    """Where content blobs live, and who can observe them there."""

    @abc.abstractmethod
    def put(self, author: str, cid: str, blob: bytes,
            recipients: Sequence[str] = ()) -> None:
        """Store a blob (recipients are used by delivery-based backends)."""

    @abc.abstractmethod
    def get(self, reader: str, cid: str) -> bytes:
        """Retrieve a blob on behalf of ``reader``."""

    @abc.abstractmethod
    def observer_views(self) -> Dict[str, Set[str]]:
        """observer name -> set of content ids it physically stores."""

    def fetch_blob(self, reader: str, cid: str) -> FetchedBlob:
        """Retrieve one blob with provenance (default: a bare ``get``)."""
        return FetchedBlob(self.get(reader, cid))

    def get_many(self, reader: str,
                 cids: Sequence[str]) -> Dict[str, object]:
        """Batched retrieval: ``cid -> FetchedBlob | ReproError``.

        Exceptions are returned as values (never raised) so a single
        unavailable cid cannot fail a whole feed's fetch pass.  This
        default is the sequential fallback every backend satisfies the
        contract with; overlay-backed backends override it to coalesce
        lookups per holder.
        """
        results: Dict[str, object] = {}
        for cid in cids:
            if cid in results:
                continue
            try:
                results[cid] = self.fetch_blob(reader, cid)
            except ReproError as exc:
                results[cid] = exc
        return results


class CentralBackend(StorageBackend):
    """All blobs at one provider (Section II-A)."""

    def __init__(self, provider: Optional[CentralProvider] = None) -> None:
        self.provider = provider or CentralProvider()

    def put(self, author: str, cid: str, blob: bytes,
            recipients: Sequence[str] = ()) -> None:
        self.provider.store(author, cid, blob)

    def get(self, reader: str, cid: str) -> bytes:
        return self.provider.fetch(reader, cid)

    def observer_views(self) -> Dict[str, Set[str]]:
        return {self.provider.name: self.provider.stored_ids()}


class DHTBackend(StorageBackend):
    """Blobs on a Chord ring with successor replication (Section II-B).

    Resilience comes from the ring's :class:`repro.fabric.Fabric`: build
    it with ``Fabric.create(resilient=True, ...)`` and every fetch and
    replication RPC routes through the :class:`ReliableChannel` (retries,
    breakers, hedged replica reads) — required for the backend to stay
    available under the E12 fault plans.  The ``channel=`` kwarg is the
    deprecated way of wiring the same thing.

    Passing ``quorum=`` (a :class:`repro.storage2.ReplicatedStore` over
    the same ring) upgrades the backend to verified quorum semantics:
    puts seal signed version records and need W acks, gets verify every
    response and return the newest verified version's payload.  The
    legacy path is untouched when ``quorum`` is ``None``.

    Overload protection needs no backend plumbing: when the fabric
    carries a ``DosnConfig(overload=...)`` config, the ring's lookups
    and the quorum store's reads mint their own per-operation deadlines
    from ``fabric.overload``, the channel enforces the retry budget, and
    the network sheds at saturated peers — a shed surfaces here as
    :class:`repro.exceptions.OverloadedError` from fetch paths.
    """

    def __init__(self, ring: ChordRing, channel=None, quorum=None) -> None:
        self.ring = ring
        if channel is not None:
            import warnings

            from repro.exceptions import ReproDeprecationWarning
            warnings.warn(
                "DHTBackend(channel=...) is deprecated; build the channel "
                "into the ring's Fabric (Fabric.create(resilient=True))",
                ReproDeprecationWarning, stacklevel=2)
            self.ring.channel = channel
        self.quorum = quorum
        #: cid -> the replica set chosen at put time; with a quorum store
        #: this aliases its placement map, so repair re-placements show up
        self.placements: Dict[str, List[str]] = (
            quorum.placements if quorum is not None else {})

    def put(self, author: str, cid: str, blob: bytes,
            recipients: Sequence[str] = ()) -> None:
        if author not in self.ring.nodes:
            raise StorageError(f"author {author!r} is not a ring member")
        if self.quorum is not None:
            self.quorum.put(author, cid, blob)
            return
        self.ring.put(author, cid, blob)
        self.placements[cid] = self.ring.replica_set(cid)

    def get(self, reader: str, cid: str) -> bytes:
        if self.quorum is not None:
            return self.quorum.get(reader, cid).payload
        value, _ = self.ring.get(reader, cid)
        return value

    def fetch_blob(self, reader: str, cid: str) -> FetchedBlob:
        if self.quorum is not None:
            result = self.quorum.get(reader, cid)
            return FetchedBlob(result.payload, source="quorum",
                               degraded=result.degraded,
                               version=result.version)
        value, _ = self.ring.get(reader, cid)
        return FetchedBlob(value)

    def get_many(self, reader: str,
                 cids: Sequence[str]) -> Dict[str, object]:
        """Coalesced batch read: one route / batch RPC per holder.

        With a quorum store the per-key holder probes are merged into one
        ``quorum_read_batch`` RPC per distinct holder; on the legacy ring
        the per-cid iterative lookups are merged into one route per
        distinct owner.  Verification semantics per cid are identical to
        the sequential path.
        """
        results: Dict[str, object] = {}
        if self.quorum is not None:
            for cid, got in self.quorum.get_many(reader, cids).items():
                if isinstance(got, Exception):
                    results[cid] = got
                else:
                    results[cid] = FetchedBlob(got.payload, source="quorum",
                                               degraded=got.degraded,
                                               version=got.version)
            return results
        for cid, got in self.ring.get_many(reader, cids).items():
            if isinstance(got, Exception):
                results[cid] = got
            else:
                results[cid] = FetchedBlob(got)
        return results

    def observer_views(self) -> Dict[str, Set[str]]:
        views: Dict[str, Set[str]] = {}
        for name, node in self.ring.nodes.items():
            views[name] = set(node.store.keys())
        return views


class FederationBackend(StorageBackend):
    """Blobs on home pods, federated to recipients' pods (Section II-B)."""

    def __init__(self, federation: FederatedNetwork) -> None:
        self.federation = federation

    def put(self, author: str, cid: str, blob: bytes,
            recipients: Sequence[str] = ()) -> None:
        self.federation.post(author, cid, blob, recipients)

    def get(self, reader: str, cid: str) -> bytes:
        return self.federation.fetch(reader, cid)

    def get_many(self, reader: str,
                 cids: Sequence[str]) -> Dict[str, object]:
        """One batched fetch RPC to the reader's home pod for all cids."""
        results: Dict[str, object] = {}
        for cid, got in self.federation.fetch_many(reader, cids).items():
            if isinstance(got, Exception):
                results[cid] = got
            else:
                results[cid] = FetchedBlob(got)
        return results

    def observer_views(self) -> Dict[str, Set[str]]:
        return {name: set(server.content.keys())
                for name, server in self.federation.servers.items()}


class LocalBackend(StorageBackend):
    """Owner-only storage: nothing leaves the author's machine.

    The availability-versus-privacy extreme point: zero exposure, but the
    content is only retrievable while the author is online (no replicas) —
    the trade-off Section I describes.
    """

    def __init__(self) -> None:
        self._stores: Dict[str, Dict[str, bytes]] = {}
        self.online: Dict[str, bool] = {}

    def put(self, author: str, cid: str, blob: bytes,
            recipients: Sequence[str] = ()) -> None:
        self._stores.setdefault(author, {})[cid] = blob
        self.online.setdefault(author, True)

    def get(self, reader: str, cid: str) -> bytes:
        for author, store in self._stores.items():
            if cid in store:
                if not self.online.get(author, True):
                    raise StorageError(
                        f"owner {author!r} is offline; {cid!r} unavailable")
                return store[cid]
        raise StorageError(f"{cid!r} not stored anywhere")

    def observer_views(self) -> Dict[str, Set[str]]:
        return {author: set(store.keys())
                for author, store in self._stores.items()}
