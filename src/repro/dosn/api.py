"""The high-level DOSN facade: one object, every architecture.

:class:`DosnNetwork` wires users, a storage architecture, and encryption
policy together so examples and experiments read like the scenarios in the
paper::

    net = DosnNetwork(architecture="dht", seed=7)
    alice, bob = net.add_user("alice"), net.add_user("bob")
    net.befriend("alice", "bob")
    cid = net.post("alice", "hello distributed world!")
    feed = net.feed("bob")             # fetch + decrypt + verify
    report = net.exposure_report()     # who could observe what

Architectures (the Section II taxonomy): ``central`` (baseline provider),
``dht`` (Chord + replication), ``federation`` (pods), ``local``
(owner-only storage).

Configuration beyond ``architecture``/``seed`` lives in the keyword-only
:class:`DosnConfig`::

    net = DosnNetwork(config=DosnConfig(architecture="dht", seed=7,
                                        replication=3, tracing=True))

(The loose ``encrypt_content=``/``level=``/``replication=``/
``federation_pods=`` constructor kwargs, deprecated for one release, are
gone — ``config=DosnConfig(...)`` is the only spelling.)  With
``tracing=True`` every ``post``/``read``/``feed``/``befriend`` opens a
span on the fabric tracer, nesting the overlay, storage and crypto spans
beneath it — experiment E13 builds its cost-breakdown tables from exactly
this tree.

Reads return a typed :class:`~repro.dosn.results.ReadResult` carrying
the verified post plus its provenance (``cache``/``quorum``/``bare``,
degraded or not).  ``DosnConfig(cache=CacheConfig(...))`` turns on the
hot-path read machinery of :mod:`repro.cache`: per-reader verified-
content caching invalidated by the author's hash-chain head, batched
:meth:`StorageBackend.get_many` feed fan-out, and social prefetching —
all strictly off by default, so every committed experiment table
regenerates byte-identically with the cache disabled.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.adversary.config import AdversaryConfig
from repro.cache import CacheConfig, SocialPrefetcher, VerifiedContentCache
from repro.dosn.feed import FeedReport, assemble_feed
from repro.dosn.provider import CentralProvider, ExposureReport
from repro.dosn.results import ReadResult
from repro.dosn.storage import (CentralBackend, DHTBackend,
                                FederationBackend, LocalBackend,
                                StorageBackend)
from repro.dosn.user import DosnUser
from repro.dosn.identity import KeyRegistry
from repro.exceptions import IntegrityError, OverlayError
from repro.fabric import Fabric
from repro.faults.overload import OverloadConfig
from repro.membership import MembershipConfig, SwimMembership
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork
from repro.stack import (AclLayer, ContentItem, IndexLayer, IntegrityLayer,
                         LayerSpec, PlacementLayer, ProtectionStack,
                         SystemSpec, register_system)
from repro.storage2 import (AntiEntropyDaemon, ReplicatedStore,
                            ReplicationConfig)

ARCHITECTURES = ("central", "dht", "federation", "local")

__all__ = ["ARCHITECTURES", "DOSN_SPEC", "DosnConfig", "DosnNetwork"]

#: The reference network's declared pipeline (Table I rows it runs).
DOSN_SPEC = register_system(SystemSpec(
    name="repro.dosn",
    citation="this reproduction's reference model",
    overlay="pluggable (central / Chord DHT / federation / local)",
    layers=(
        LayerSpec("integrity", "Schnorr signature + hash-chained timeline",
                  table1_rows=("Integrity of data owner and data content",
                               "Historical integrity"),
                  detail="per-post signature; cid appended to the "
                         "author's hash chain"),
        LayerSpec("acl", "friend-group symmetric encryption",
                  table1_rows=("Symmetric key encryption",),
                  detail="one StreamCipher group key per author, "
                         "distributed out of band"),
        LayerSpec("placement", "pluggable storage backend",
                  detail="central provider, replicated Chord DHT, "
                         "federation pods, or owner-local"),
    ),
    notes="the configurable baseline the experiments sweep"))

#: The index layer appended when ``DosnConfig.index_posts`` is enabled.
_INDEX_LAYER_SPEC = LayerSpec(
    "index", "blinded index",
    table1_rows=("Content privacy",),
    detail="HMAC-blinded keyword postings (Section V)")


@dataclass(frozen=True)
class DosnConfig:
    """Keyword-only configuration surface for :class:`DosnNetwork`.

    Replaces the growing positional kwarg list; being frozen, one config
    can parameterize a whole experiment sweep via
    :func:`dataclasses.replace`.
    """

    #: one of :data:`ARCHITECTURES`
    architecture: str = "dht"
    #: master seed — every random stream in the network derives from it
    seed: int = 0
    #: encrypt posts for the author's friend group before storage
    encrypt_content: bool = True
    #: cryptographic parameter level (see :mod:`repro.crypto.params`)
    level: str = "TOY"
    #: replica-set size for the DHT architecture.  An ``int`` keeps the
    #: legacy first-responder semantics; a
    #: :class:`repro.storage2.ReplicationConfig` opts into the verified
    #: quorum store (W-of-N writes, R-of-N verified reads, and — when its
    #: ``repair_interval`` is set — the anti-entropy daemon)
    replication: "int | ReplicationConfig" = 2
    #: pod count for the federation architecture
    federation_pods: int = 4
    #: collect virtual-time spans on the fabric tracer
    tracing: bool = False
    #: also record segregated wall-clock span durations (implies tracing)
    wall_clock: bool = False
    #: route DHT storage RPCs through a :class:`ReliableChannel`
    resilient: bool = False
    #: index posts into a blinded :class:`~repro.search.index.SearchIndex`
    index_posts: bool = False
    #: run a SWIM-style failure detector (:mod:`repro.membership`) and use
    #: it — instead of the churn oracle — as the liveness source for
    #: routing, the resilient channel, and the anti-entropy daemon.
    #: DHT architecture only; ``None`` keeps the legacy oracle paths.
    membership: Optional[MembershipConfig] = None
    #: hot-path read caching (:mod:`repro.cache`): per-reader verified-
    #: content LRU + batched feed fan-out + social prefetch.  ``None``
    #: (the default) keeps every read cold and every legacy code path —
    #: including RNG draws and span order — untouched.
    cache: Optional[CacheConfig] = None
    #: account fan-out latency as the concurrent critical path (quorum
    #: probes, hedged fetches, ping-req chains overlap) instead of the
    #: legacy serial sum.  Message/byte counts are unchanged; ``False``
    #: keeps every committed table byte-identical.
    concurrent: bool = False
    #: overload protection (:mod:`repro.faults.overload`): per-peer
    #: service queues with load shedding, per-operation deadlines through
    #: lookups / quorum reads / feed fan-out, a shared retry budget, and
    #: adaptive attempt timeouts.  ``None`` (the default) keeps the
    #: fair-weather fabric — no service state, no new RNG draws, every
    #: committed table byte-identical.
    overload: Optional[OverloadConfig] = None
    #: routing-layer adversary (:mod:`repro.adversary`): a hash-selected
    #: fraction of overlay peers misroute / eclipse / drop lookups, and
    #: an :attr:`~repro.adversary.AdversaryConfig.defense` switches the
    #: ring to certified node IDs + disjoint-path voting + quarantine.
    #: ``None`` (the default) keeps lookups trusting and every committed
    #: table byte-identical — and even an installed adversary draws no
    #: RNG (all its decisions are hash-derived).
    adversary: Optional[AdversaryConfig] = None

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise OverlayError(
                f"unknown architecture {self.architecture!r}; "
                f"pick from {ARCHITECTURES}")
        if self.membership is not None and self.architecture != "dht":
            raise OverlayError(
                "membership requires the dht architecture (the detector "
                "rides on overlay peers)")
        if self.adversary is not None and self.architecture != "dht":
            raise OverlayError(
                "adversary requires the dht architecture (the attacks "
                "target overlay routing)")

    def with_overrides(self, **changes) -> "DosnConfig":
        """A copy with some fields replaced (sweep helper)."""
        return _dc_replace(self, **changes)


class DosnNetwork:
    """A complete simulated (D)OSN."""

    def __init__(self, architecture: Optional[str] = None,
                 seed: Optional[int] = None, *,
                 config: Optional[DosnConfig] = None,
                 fabric: Optional[Fabric] = None) -> None:
        if config is None:
            config = DosnConfig(
                architecture=(architecture if architecture is not None
                              else "dht"),
                seed=seed if seed is not None else 0)
        else:
            overrides = {}
            if architecture is not None:
                overrides["architecture"] = architecture
            if seed is not None:
                overrides["seed"] = seed
            if overrides:
                config = config.with_overrides(**overrides)
        self.config = config
        self.architecture = config.architecture
        self.level = config.level
        self.encrypt_content = config.encrypt_content
        if fabric is None:
            fabric = Fabric.create(
                seed=config.seed,
                tracing=config.tracing or config.wall_clock,
                wall_clock=config.wall_clock,
                resilient=config.resilient,
                concurrent=config.concurrent,
                overload=config.overload,
                adversary=config.adversary)
        self.fabric = fabric
        self.sim = fabric.sim
        self.network = fabric.network
        self.tracer = fabric.tracer
        self.metrics = fabric.metrics
        self.registry = KeyRegistry()
        self.users: Dict[str, DosnUser] = {}
        self.graph = nx.Graph()
        self.rng = _random.Random(config.seed)
        self._dirty_routing = False
        self.provider: Optional[CentralProvider] = None
        self.repair_daemon: Optional[AntiEntropyDaemon] = None
        self.membership: Optional[SwimMembership] = None
        if config.architecture == "central":
            self.provider = CentralProvider()
            self.storage: StorageBackend = CentralBackend(self.provider)
        elif config.architecture == "dht":
            if config.membership is not None:
                # Built before the store/daemon so both auto-discover it
                # from the fabric as their liveness source.
                self.membership = SwimMembership(fabric, config.membership)
            rep = config.replication
            if isinstance(rep, ReplicationConfig):
                self.ring = ChordRing(fabric, replication=rep.n)
                quorum = ReplicatedStore(
                    self.ring, rep, registry=self.registry,
                    signer_of=lambda name: self.users[name].identity.signer)
                self.storage = DHTBackend(self.ring, quorum=quorum)
                if rep.repair_interval is not None:
                    self.repair_daemon = AntiEntropyDaemon(
                        quorum, rep.repair_interval)
                    self.repair_daemon.start()
            else:
                self.ring = ChordRing(fabric, replication=rep)
                self.storage = DHTBackend(self.ring)
        elif config.architecture == "federation":
            self.federation = FederatedNetwork(
                self.network,
                [f"pod{i}" for i in range(config.federation_pods)])
            self.storage = FederationBackend(self.federation)
        else:
            self.storage = LocalBackend()
        #: cid -> (author, encrypted?) for exposure accounting
        self._catalog: Dict[str, Tuple[str, bool]] = {}
        #: cid -> (text, tags, sequence): enough to reseal on :meth:`repost`
        self._posts: Dict[str, Tuple[str, Tuple[str, ...], int]] = {}
        self.index = None
        self.stack = self._build_stack(config)
        #: the per-reader verified-content cache (``None`` when cold)
        self.cache: Optional[VerifiedContentCache] = None
        #: warms caches along social edges (``None`` unless enabled)
        self.prefetcher: Optional[SocialPrefetcher] = None
        if config.cache is not None and config.cache.caching:
            self.cache = VerifiedContentCache(
                config.cache.capacity_per_reader, metrics=self.metrics)
            if config.cache.prefetch:
                self.prefetcher = SocialPrefetcher(
                    self.cache, config.cache.prefetch_depth,
                    view_of=self._view_of, fetch_many=self._fetch_many,
                    open_post=self._open_for,
                    metrics=self.metrics, tracer=self.tracer)

    def _build_stack(self, config: DosnConfig) -> ProtectionStack:
        """Assemble the network's :class:`ProtectionStack`.

        Layer hooks delegate to :class:`DosnUser`'s split publish/read
        halves and to the selected storage backend.  The placement layer
        carries the legacy ``storage.put``/``storage.get`` span names so
        committed trace baselines (E13) stay byte-identical; metrics stay
        off for the same reason — the fabric tracer already prices every
        phase.
        """
        spec = DOSN_SPEC
        layers = [
            IntegrityLayer(post=self._layer_seal, read=self._layer_verify,
                           spec=spec.layers[0]),
            AclLayer(post=self._layer_protect, read=self._layer_unprotect,
                     spec=spec.layers[1]),
            PlacementLayer(post=self._layer_store, read=self._layer_fetch,
                           spec=spec.layers[2],
                           span_post="storage.put", span_read="storage.get",
                           span_attrs={"backend": config.architecture}),
        ]
        if config.index_posts:
            from repro.search.index import SearchIndex
            self.index = SearchIndex(
                blinding_secret=f"dosn/index/{config.seed}".encode())
            layers.append(IndexLayer.from_index(
                self.index, lambda item: str(item.meta.get("text", "")),
                spec=_INDEX_LAYER_SPEC))
            spec = SystemSpec(
                name=spec.name, citation=spec.citation, overlay=spec.overlay,
                layers=spec.layers + (_INDEX_LAYER_SPEC,), notes=spec.notes)
        return ProtectionStack(layers, spec=spec, tracer=self.tracer)

    # -- stack layer hooks ---------------------------------------------------------

    def _layer_seal(self, item: ContentItem) -> None:
        user = self.users[item.author]
        item.cid, item.payload = user.seal_post(
            item.meta["text"], item.meta["tags"])

    def _layer_protect(self, item: ContentItem) -> None:
        item.payload = self.users[item.author].protect_document(item.payload)

    def _layer_store(self, item: ContentItem) -> None:
        user = self.users[item.author]
        self.storage.put(item.author, item.cid, item.payload,
                         recipients=sorted(user.friends))

    def _layer_fetch(self, item: ContentItem) -> None:
        # fetch_blob issues exactly the RPCs .get() would (legacy tables
        # depend on that) but keeps the provenance for the ReadResult.
        fetched = self.storage.fetch_blob(item.reader, item.cid)
        item.payload = fetched.blob
        item.meta["fetched"] = fetched

    def _layer_unprotect(self, item: ContentItem) -> None:
        item.payload = self.users[item.reader].unlock(item.author,
                                                      item.payload)

    def _layer_verify(self, item: ContentItem) -> None:
        item.result = self.users[item.reader].verify_document(
            item.author, item.payload, expected_cid=item.cid)

    # -- cache plumbing (only exercised with DosnConfig(cache=...)) ----------------

    def _view_of(self, reader: str, author: str):
        """Sync and return ``reader``'s chain-verified view of ``author``.

        ``None`` when the author is unknown, unsynced, or their published
        chain fails to extend the verified view — the cache refuses to
        serve without this evidence.
        """
        user = self.users[reader]
        friend = self.users.get(author)
        if friend is not None:
            try:
                user.sync_timeline(friend)
            except IntegrityError:
                return None
        return user.views.get(author)

    def _fetch_many(self, reader: str, cids: List[str]) -> Dict[str, object]:
        """The batched storage read, under one span (the E16 hot path).

        ``CacheConfig(batch_reads=False)`` pins the sequential default
        (one :meth:`fetch_blob` per cid) for apples-to-apples benchmarks.
        """
        with self.tracer.span("storage.get_many", reader=reader,
                              requested=len(cids)):
            if self.config.cache is not None \
                    and not self.config.cache.batch_reads:
                return StorageBackend.get_many(self.storage, reader, cids)
            return self.storage.get_many(reader, cids)

    def _open_for(self, reader: str, author: str, blob: bytes, cid: str):
        """Decrypt + verify one fetched blob through the stack's read path."""
        item = ContentItem(author=author, reader=reader, cid=cid,
                           payload=blob)
        self.stack.read(item, only=("acl", "integrity"))
        return item.result

    # -- population -----------------------------------------------------------

    def add_user(self, name: str) -> DosnUser:
        """Create a user and enroll them in the architecture."""
        user = DosnUser(name, self.registry, level=self.level,
                        rng=_random.Random(f"{name}/{self.rng.random()}"),
                        encrypt_content=self.encrypt_content,
                        tracer=self.tracer)
        self.users[name] = user
        self.graph.add_node(name)
        if self.architecture == "dht":
            self.ring.add_node(name)
            if self.membership is not None:
                self.membership.register(name)
            self._dirty_routing = True
        elif self.architecture == "federation":
            self.federation.register_user(name)
        return user

    def add_users(self, names: Sequence[str]) -> List[DosnUser]:
        """Bulk user creation."""
        return [self.add_user(name) for name in names]

    def befriend(self, a: str, b: str) -> None:
        """Create a mutual friendship (keys exchanged out-of-band).

        With a prefetcher enabled each side's cache is warmed with the
        new friend's newest posts right away — the social graph is the
        access predictor, and a fresh edge is the strongest signal.
        """
        with self.tracer.span("dosn.befriend", a=a, b=b):
            self.users[a].befriend(self.users[b])
            self.graph.add_edge(a, b)
            if self.provider is not None:
                self.provider.record_edge(a, b)
        if self.prefetcher is not None:
            self._ensure_routing()
            self.prefetcher.warm(a, (b,))
            self.prefetcher.warm(b, (a,))

    def apply_social_graph(self, graph: nx.Graph) -> None:
        """Befriend along every edge of a (workload-generated) graph."""
        for a, b in graph.edges:
            self.befriend(str(a), str(b))

    def _ensure_routing(self) -> None:
        if self.architecture == "dht" and self._dirty_routing:
            self.ring.build()
            self._dirty_routing = False
            if self.membership is not None \
                    and len(self.membership.views) >= 2:
                self.membership.start()

    # -- the social operations ----------------------------------------------------

    def post(self, author: str, text: str,
             tags: Sequence[str] = ()) -> str:
        """Author a post through the stack; returns its content id."""
        self._ensure_routing()
        with self.tracer.span("dosn.post", author=author):
            item = ContentItem(author=author,
                               meta={"text": text, "tags": tags})
            self.stack.post(item)
            self._catalog[item.cid] = (author, self.encrypt_content)
            self._posts[item.cid] = (text, tuple(tags),
                                     self.users[author].posts_published - 1)
            return item.cid

    def repost(self, author: str, cid: str) -> str:
        """Overwrite a published post in place: same cid, fresh bytes.

        Content addressing pins the cid, but the randomized signature and
        fresh cipher nonce make the stored blob differ, and the author's
        hash chain re-lists the cid — the signed announcement that makes
        every reader's cached copy provably stale
        (:meth:`repro.cache.VerifiedContentCache.lookup` evicts on it).
        On quorum backends the overwrite seals the next version, so
        Byzantine holders gain real stale history to replay.
        """
        record = self._posts.get(cid)
        if record is None:
            raise OverlayError(
                f"unknown content id {cid!r}: only posts published "
                "through this network can be reposted")
        owner, _ = self._catalog[cid]
        if owner != author:
            raise OverlayError(
                f"{author!r} cannot repost {owner!r}'s content")
        text, tags, sequence = record
        self._ensure_routing()
        with self.tracer.span("dosn.repost", author=author):
            user = self.users[author]
            new_cid, document = user.reseal_post(text, tags, sequence)
            assert new_cid == cid  # the address is a function of the content
            blob = user.protect_document(document)
            self.storage.put(author, cid, blob,
                             recipients=sorted(user.friends))
            return cid

    def read(self, reader: str, author: str, cid: str) -> ReadResult:
        """Fetch, decrypt and verify one post as ``reader``.

        Returns a typed :class:`~repro.dosn.results.ReadResult` — the
        verified post under ``.post`` plus provenance (``source`` in
        ``cache``/``quorum``/``bare``, ``degraded``).  With caching
        enabled, a hit is served only after re-checking the entry against
        the author's current chain-verified head; misses run the full
        stack and seed the cache.
        """
        self._ensure_routing()
        with self.tracer.span("dosn.read", reader=reader, author=author):
            view = None
            if self.cache is not None:
                view = self._view_of(reader, author)
                entry = self.cache.lookup(reader, author, cid, view)
                if entry is not None:
                    return ReadResult(entry.post, verified=True,
                                      degraded=False, source="cache")
            item = ContentItem(author=author, reader=reader, cid=cid)
            self.stack.read(item)
            fetched = item.meta.get("fetched")
            result = ReadResult(item.result, verified=True,
                                degraded=getattr(fetched, "degraded", False),
                                source=getattr(fetched, "source", "bare"))
            if self.cache is not None and view is not None \
                    and not result.degraded:
                self.cache.insert(reader, author, cid, item.result, view,
                                  version=getattr(fetched, "version", None))
            return result

    def prefetch(self, reader: str) -> int:
        """Warm ``reader``'s cache with their friends' newest posts.

        Returns how many posts were fetched, verified and cached; always
        0 when the network runs without a prefetcher
        (``DosnConfig.cache`` unset, capacity 0, or ``prefetch=False``).
        """
        if self.prefetcher is None:
            return 0
        self._ensure_routing()
        return self.prefetcher.warm(reader, self.users[reader].friends)

    def feed(self, reader: str,
             limit_per_friend: Optional[int] = None) -> FeedReport:
        """Assemble the reader's verified news feed.

        The fetch pass runs only the stack's placement layer; each
        fetched blob is then opened through the ACL + integrity layers.
        With ``DosnConfig.cache`` set the feed switches to the batched
        strategy: the prefetcher warms the reader's cache, chain-
        validated hits skip fetch + decrypt + verify, and the remaining
        cids ride one :meth:`StorageBackend.get_many` call (one route /
        RPC per holder instead of one per post).
        """
        self._ensure_routing()

        def fetch(r: str, cid: str):
            item = ContentItem(author="", reader=r, cid=cid)
            self.stack.read(item, only=("placement",))
            return item.meta.get("fetched", item.payload)

        def open_post(author: str, blob: bytes, cid: str):
            item = ContentItem(author=author, reader=reader, cid=cid,
                               payload=blob)
            self.stack.read(item, only=("acl", "integrity"))
            return item.result

        fetch_many = (self._fetch_many if self.config.cache is not None
                      else None)
        with self.tracer.span("dosn.feed", reader=reader):
            if self.prefetcher is not None:
                self.prefetcher.warm(reader, self.users[reader].friends)
            return assemble_feed(
                self.users[reader], self.users, fetch=fetch,
                limit_per_friend=limit_per_friend, open_post=open_post,
                fetch_many=fetch_many, cache=self.cache)

    def search(self, query: str) -> List[str]:
        """Content ids matching ``query`` via the stack's index layer.

        Requires :attr:`DosnConfig.index_posts`; the index stores
        HMAC-blinded tags, so its host never sees the vocabulary.
        """
        if self.index is None:
            raise OverlayError(
                "search requires DosnConfig(index_posts=True)")
        return self.index.search(query)

    # -- exposure accounting (experiment E8) -----------------------------------------

    def exposure_report(self) -> List[ExposureReport]:
        """Per-observer exposure: content/metadata/graph view fractions.

        Observers are providers (central), pods (federation) or storing
        peers (dht/local).  A stored blob counts toward ``content_view``
        only if it is readable by that observer: unencrypted, or the
        observer is the author/a friend holding the group key.
        """
        total_content = len(self._catalog)
        total_edges = self.graph.number_of_edges()
        reports: List[ExposureReport] = []
        for observer, stored in self.storage.observer_views().items():
            readable = 0
            graph_view = 0.0
            for cid in stored:
                author, encrypted = self._catalog.get(cid, (None, True))
                if author is None:
                    continue
                if not encrypted:
                    readable += 1
                elif observer == author or (
                        observer in self.users
                        and author in self.users[observer].friend_keys):
                    readable += 1
            if self.provider is not None and observer == self.provider.name:
                graph_view = (len(self.provider.observed_edges)
                              / total_edges if total_edges else 0.0)
            elif self.architecture == "federation":
                server = self.federation.servers.get(observer)
                if server is not None and total_edges:
                    seen = {tuple(sorted(edge))
                            for edge in server.observed_edges}
                    graph_view = len(seen) / total_edges
            elif observer in self.users and total_edges:
                # A peer knows its own friendships.
                graph_view = self.graph.degree(observer) / total_edges
            reports.append(ExposureReport(
                observer=observer,
                content_view=(readable / total_content
                              if total_content else 0.0),
                metadata_view=(len(stored & set(self._catalog))
                               / total_content if total_content else 0.0),
                graph_view=graph_view))
        return reports

    def worst_observer(self) -> ExposureReport:
        """The single most-exposed observer (the paper's headline metric)."""
        reports = self.exposure_report()
        if not reports:
            return ExposureReport(observer="nobody", content_view=0.0,
                                  metadata_view=0.0, graph_view=0.0)
        return max(reports,
                   key=lambda r: (r.content_view, r.metadata_view,
                                  r.graph_view))
