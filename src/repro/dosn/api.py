"""The high-level DOSN facade: one object, every architecture.

:class:`DosnNetwork` wires users, a storage architecture, and encryption
policy together so examples and experiments read like the scenarios in the
paper::

    net = DosnNetwork(architecture="dht", seed=7)
    alice, bob = net.add_user("alice"), net.add_user("bob")
    net.befriend("alice", "bob")
    cid = net.post("alice", "hello distributed world!")
    feed = net.feed("bob")             # fetch + decrypt + verify
    report = net.exposure_report()     # who could observe what

Architectures (the Section II taxonomy): ``central`` (baseline provider),
``dht`` (Chord + replication), ``federation`` (pods), ``local``
(owner-only storage).

Configuration beyond ``architecture``/``seed`` lives in the keyword-only
:class:`DosnConfig`::

    net = DosnNetwork(config=DosnConfig(architecture="dht", seed=7,
                                        replication=3, tracing=True))

The old loose kwargs (``encrypt_content=``, ``level=``, ``replication=``,
``federation_pods=``) still work for one release and raise
:class:`~repro.exceptions.ReproDeprecationWarning`.  With
``tracing=True`` every ``post``/``read``/``feed``/``befriend`` opens a
span on the fabric tracer, nesting the overlay, storage and crypto spans
beneath it — experiment E13 builds its cost-breakdown tables from exactly
this tree.
"""

from __future__ import annotations

import random as _random
import warnings
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.dosn.feed import FeedReport, assemble_feed
from repro.dosn.provider import CentralProvider, ExposureReport
from repro.dosn.storage import (CentralBackend, DHTBackend,
                                FederationBackend, LocalBackend,
                                StorageBackend)
from repro.dosn.user import DosnUser
from repro.dosn.identity import KeyRegistry
from repro.exceptions import OverlayError, ReproDeprecationWarning
from repro.fabric import Fabric
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork

ARCHITECTURES = ("central", "dht", "federation", "local")

__all__ = ["ARCHITECTURES", "DosnConfig", "DosnNetwork"]


@dataclass(frozen=True)
class DosnConfig:
    """Keyword-only configuration surface for :class:`DosnNetwork`.

    Replaces the growing positional kwarg list; being frozen, one config
    can parameterize a whole experiment sweep via
    :func:`dataclasses.replace`.
    """

    #: one of :data:`ARCHITECTURES`
    architecture: str = "dht"
    #: master seed — every random stream in the network derives from it
    seed: int = 0
    #: encrypt posts for the author's friend group before storage
    encrypt_content: bool = True
    #: cryptographic parameter level (see :mod:`repro.crypto.params`)
    level: str = "TOY"
    #: replica-set size for the DHT architecture
    replication: int = 2
    #: pod count for the federation architecture
    federation_pods: int = 4
    #: collect virtual-time spans on the fabric tracer
    tracing: bool = False
    #: also record segregated wall-clock span durations (implies tracing)
    wall_clock: bool = False
    #: route DHT storage RPCs through a :class:`ReliableChannel`
    resilient: bool = False

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise OverlayError(
                f"unknown architecture {self.architecture!r}; "
                f"pick from {ARCHITECTURES}")

    def with_overrides(self, **changes) -> "DosnConfig":
        """A copy with some fields replaced (sweep helper)."""
        return _dc_replace(self, **changes)


_LEGACY_KWARGS = ("encrypt_content", "level", "replication",
                  "federation_pods")


class DosnNetwork:
    """A complete simulated (D)OSN."""

    def __init__(self, architecture: Optional[str] = None,
                 seed: Optional[int] = None, *,
                 config: Optional[DosnConfig] = None,
                 fabric: Optional[Fabric] = None, **legacy) -> None:
        config = self._resolve_config(architecture, seed, config, legacy)
        self.config = config
        self.architecture = config.architecture
        self.level = config.level
        self.encrypt_content = config.encrypt_content
        if fabric is None:
            fabric = Fabric.create(
                seed=config.seed,
                tracing=config.tracing or config.wall_clock,
                wall_clock=config.wall_clock,
                resilient=config.resilient)
        self.fabric = fabric
        self.sim = fabric.sim
        self.network = fabric.network
        self.tracer = fabric.tracer
        self.metrics = fabric.metrics
        self.registry = KeyRegistry()
        self.users: Dict[str, DosnUser] = {}
        self.graph = nx.Graph()
        self.rng = _random.Random(config.seed)
        self._dirty_routing = False
        self.provider: Optional[CentralProvider] = None
        if config.architecture == "central":
            self.provider = CentralProvider()
            self.storage: StorageBackend = CentralBackend(self.provider)
        elif config.architecture == "dht":
            self.ring = ChordRing(fabric, replication=config.replication)
            self.storage = DHTBackend(self.ring)
        elif config.architecture == "federation":
            self.federation = FederatedNetwork(
                self.network,
                [f"pod{i}" for i in range(config.federation_pods)])
            self.storage = FederationBackend(self.federation)
        else:
            self.storage = LocalBackend()
        #: cid -> (author, encrypted?) for exposure accounting
        self._catalog: Dict[str, Tuple[str, bool]] = {}

    @staticmethod
    def _resolve_config(architecture: Optional[str], seed: Optional[int],
                        config: Optional[DosnConfig],
                        legacy: Dict[str, object]) -> DosnConfig:
        unknown = set(legacy) - set(_LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"unexpected DosnNetwork arguments {sorted(unknown)}")
        if legacy:
            warnings.warn(
                f"DosnNetwork({', '.join(sorted(legacy))}=...) keyword "
                "arguments are deprecated; pass config=DosnConfig(...) "
                "instead", ReproDeprecationWarning, stacklevel=3)
            if config is not None:
                raise TypeError(
                    "pass either config=DosnConfig(...) or the deprecated "
                    "loose kwargs, not both")
        if config is None:
            config = DosnConfig(
                architecture=architecture if architecture is not None
                else "dht",
                seed=seed if seed is not None else 0,
                **legacy)  # type: ignore[arg-type]
        else:
            overrides = {}
            if architecture is not None:
                overrides["architecture"] = architecture
            if seed is not None:
                overrides["seed"] = seed
            if overrides:
                config = config.with_overrides(**overrides)
        return config

    # -- population -----------------------------------------------------------

    def add_user(self, name: str) -> DosnUser:
        """Create a user and enroll them in the architecture."""
        user = DosnUser(name, self.registry, level=self.level,
                        rng=_random.Random(f"{name}/{self.rng.random()}"),
                        encrypt_content=self.encrypt_content,
                        tracer=self.tracer)
        self.users[name] = user
        self.graph.add_node(name)
        if self.architecture == "dht":
            self.ring.add_node(name)
            self._dirty_routing = True
        elif self.architecture == "federation":
            self.federation.register_user(name)
        return user

    def add_users(self, names: Sequence[str]) -> List[DosnUser]:
        """Bulk user creation."""
        return [self.add_user(name) for name in names]

    def befriend(self, a: str, b: str) -> None:
        """Create a mutual friendship (keys exchanged out-of-band)."""
        with self.tracer.span("dosn.befriend", a=a, b=b):
            self.users[a].befriend(self.users[b])
            self.graph.add_edge(a, b)
            if self.provider is not None:
                self.provider.record_edge(a, b)

    def apply_social_graph(self, graph: nx.Graph) -> None:
        """Befriend along every edge of a (workload-generated) graph."""
        for a, b in graph.edges:
            self.befriend(str(a), str(b))

    def _ensure_routing(self) -> None:
        if self.architecture == "dht" and self._dirty_routing:
            self.ring.build()
            self._dirty_routing = False

    # -- the social operations ----------------------------------------------------

    def post(self, author: str, text: str,
             tags: Sequence[str] = ()) -> str:
        """Author a post; returns its content id."""
        self._ensure_routing()
        with self.tracer.span("dosn.post", author=author):
            user = self.users[author]
            cid, blob = user.compose_post(text, tags)
            with self.tracer.span("storage.put",
                                  backend=self.architecture):
                self.storage.put(author, cid, blob,
                                 recipients=sorted(user.friends))
            self._catalog[cid] = (author, self.encrypt_content)
            return cid

    def read(self, reader: str, author: str, cid: str):
        """Fetch, decrypt and verify one post as ``reader``."""
        self._ensure_routing()
        with self.tracer.span("dosn.read", reader=reader, author=author):
            with self.tracer.span("storage.get",
                                  backend=self.architecture):
                blob = self.storage.get(reader, cid)
            return self.users[reader].open_post(author, blob,
                                                expected_cid=cid)

    def feed(self, reader: str,
             limit_per_friend: Optional[int] = None) -> FeedReport:
        """Assemble the reader's verified news feed."""
        self._ensure_routing()

        def fetch(r: str, cid: str) -> bytes:
            with self.tracer.span("storage.get",
                                  backend=self.architecture):
                return self.storage.get(r, cid)

        with self.tracer.span("dosn.feed", reader=reader):
            return assemble_feed(
                self.users[reader], self.users, fetch=fetch,
                limit_per_friend=limit_per_friend)

    # -- exposure accounting (experiment E8) -----------------------------------------

    def exposure_report(self) -> List[ExposureReport]:
        """Per-observer exposure: content/metadata/graph view fractions.

        Observers are providers (central), pods (federation) or storing
        peers (dht/local).  A stored blob counts toward ``content_view``
        only if it is readable by that observer: unencrypted, or the
        observer is the author/a friend holding the group key.
        """
        total_content = len(self._catalog)
        total_edges = self.graph.number_of_edges()
        reports: List[ExposureReport] = []
        for observer, stored in self.storage.observer_views().items():
            readable = 0
            graph_view = 0.0
            for cid in stored:
                author, encrypted = self._catalog.get(cid, (None, True))
                if author is None:
                    continue
                if not encrypted:
                    readable += 1
                elif observer == author or (
                        observer in self.users
                        and author in self.users[observer].friend_keys):
                    readable += 1
            if self.provider is not None and observer == self.provider.name:
                graph_view = (len(self.provider.observed_edges)
                              / total_edges if total_edges else 0.0)
            elif self.architecture == "federation":
                server = self.federation.servers.get(observer)
                if server is not None and total_edges:
                    seen = {tuple(sorted(edge))
                            for edge in server.observed_edges}
                    graph_view = len(seen) / total_edges
            elif observer in self.users and total_edges:
                # A peer knows its own friendships.
                graph_view = self.graph.degree(observer) / total_edges
            reports.append(ExposureReport(
                observer=observer,
                content_view=(readable / total_content
                              if total_content else 0.0),
                metadata_view=(len(stored & set(self._catalog))
                               / total_content if total_content else 0.0),
                graph_view=graph_view))
        return reports

    def worst_observer(self) -> ExposureReport:
        """The single most-exposed observer (the paper's headline metric)."""
        reports = self.exposure_report()
        if not reports:
            return ExposureReport(observer="nobody", content_view=0.0,
                                  metadata_view=0.0, graph_view=0.0)
        return max(reports,
                   key=lambda r: (r.content_view, r.metadata_view,
                                  r.graph_view))
