"""The high-level DOSN facade: one object, every architecture.

:class:`DosnNetwork` wires users, a storage architecture, and encryption
policy together so examples and experiments read like the scenarios in the
paper::

    net = DosnNetwork(architecture="dht", seed=7)
    alice, bob = net.add_user("alice"), net.add_user("bob")
    net.befriend("alice", "bob")
    cid = net.post("alice", "hello distributed world!")
    feed = net.feed("bob")             # fetch + decrypt + verify
    report = net.exposure_report()     # who could observe what

Architectures (the Section II taxonomy): ``central`` (baseline provider),
``dht`` (Chord + replication), ``federation`` (pods), ``local``
(owner-only storage).
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.dosn.feed import FeedReport, assemble_feed
from repro.dosn.provider import CentralProvider, ExposureReport
from repro.dosn.storage import (CentralBackend, DHTBackend,
                                FederationBackend, LocalBackend,
                                StorageBackend)
from repro.dosn.user import DosnUser
from repro.dosn.identity import KeyRegistry
from repro.exceptions import OverlayError
from repro.overlay.chord import ChordRing
from repro.overlay.federation import FederatedNetwork
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator

ARCHITECTURES = ("central", "dht", "federation", "local")


class DosnNetwork:
    """A complete simulated (D)OSN."""

    def __init__(self, architecture: str = "dht", seed: int = 0,
                 encrypt_content: bool = True, level: str = "TOY",
                 replication: int = 2, federation_pods: int = 4) -> None:
        if architecture not in ARCHITECTURES:
            raise OverlayError(
                f"unknown architecture {architecture!r}; "
                f"pick from {ARCHITECTURES}")
        self.architecture = architecture
        self.level = level
        self.encrypt_content = encrypt_content
        self.sim = Simulator(seed)
        self.network = SimNetwork(self.sim)
        self.registry = KeyRegistry()
        self.users: Dict[str, DosnUser] = {}
        self.graph = nx.Graph()
        self.rng = _random.Random(seed)
        self._dirty_routing = False
        self.provider: Optional[CentralProvider] = None
        if architecture == "central":
            self.provider = CentralProvider()
            self.storage: StorageBackend = CentralBackend(self.provider)
        elif architecture == "dht":
            self.ring = ChordRing(self.network, replication=replication)
            self.storage = DHTBackend(self.ring)
        elif architecture == "federation":
            self.federation = FederatedNetwork(
                self.network, [f"pod{i}" for i in range(federation_pods)])
            self.storage = FederationBackend(self.federation)
        else:
            self.storage = LocalBackend()
        #: cid -> (author, encrypted?) for exposure accounting
        self._catalog: Dict[str, Tuple[str, bool]] = {}

    # -- population -----------------------------------------------------------

    def add_user(self, name: str) -> DosnUser:
        """Create a user and enroll them in the architecture."""
        user = DosnUser(name, self.registry, level=self.level,
                        rng=_random.Random(f"{name}/{self.rng.random()}"),
                        encrypt_content=self.encrypt_content)
        self.users[name] = user
        self.graph.add_node(name)
        if self.architecture == "dht":
            self.ring.add_node(name)
            self._dirty_routing = True
        elif self.architecture == "federation":
            self.federation.register_user(name)
        return user

    def add_users(self, names: Sequence[str]) -> List[DosnUser]:
        """Bulk user creation."""
        return [self.add_user(name) for name in names]

    def befriend(self, a: str, b: str) -> None:
        """Create a mutual friendship (keys exchanged out-of-band)."""
        self.users[a].befriend(self.users[b])
        self.graph.add_edge(a, b)
        if self.provider is not None:
            self.provider.record_edge(a, b)

    def apply_social_graph(self, graph: nx.Graph) -> None:
        """Befriend along every edge of a (workload-generated) graph."""
        for a, b in graph.edges:
            self.befriend(str(a), str(b))

    def _ensure_routing(self) -> None:
        if self.architecture == "dht" and self._dirty_routing:
            self.ring.build()
            self._dirty_routing = False

    # -- the social operations ----------------------------------------------------

    def post(self, author: str, text: str,
             tags: Sequence[str] = ()) -> str:
        """Author a post; returns its content id."""
        self._ensure_routing()
        user = self.users[author]
        cid, blob = user.compose_post(text, tags)
        self.storage.put(author, cid, blob,
                         recipients=sorted(user.friends))
        self._catalog[cid] = (author, self.encrypt_content)
        return cid

    def read(self, reader: str, author: str, cid: str):
        """Fetch, decrypt and verify one post as ``reader``."""
        self._ensure_routing()
        blob = self.storage.get(reader, cid)
        return self.users[reader].open_post(author, blob, expected_cid=cid)

    def feed(self, reader: str,
             limit_per_friend: Optional[int] = None) -> FeedReport:
        """Assemble the reader's verified news feed."""
        self._ensure_routing()
        return assemble_feed(
            self.users[reader], self.users,
            fetch=lambda r, cid: self.storage.get(r, cid),
            limit_per_friend=limit_per_friend)

    # -- exposure accounting (experiment E8) -----------------------------------------

    def exposure_report(self) -> List[ExposureReport]:
        """Per-observer exposure: content/metadata/graph view fractions.

        Observers are providers (central), pods (federation) or storing
        peers (dht/local).  A stored blob counts toward ``content_view``
        only if it is readable by that observer: unencrypted, or the
        observer is the author/a friend holding the group key.
        """
        total_content = len(self._catalog)
        total_edges = self.graph.number_of_edges()
        reports: List[ExposureReport] = []
        for observer, stored in self.storage.observer_views().items():
            readable = 0
            graph_view = 0.0
            for cid in stored:
                author, encrypted = self._catalog.get(cid, (None, True))
                if author is None:
                    continue
                if not encrypted:
                    readable += 1
                elif observer == author or (
                        observer in self.users
                        and author in self.users[observer].friend_keys):
                    readable += 1
            if self.provider is not None and observer == self.provider.name:
                graph_view = (len(self.provider.observed_edges)
                              / total_edges if total_edges else 0.0)
            elif self.architecture == "federation":
                server = self.federation.servers.get(observer)
                if server is not None and total_edges:
                    seen = {tuple(sorted(edge))
                            for edge in server.observed_edges}
                    graph_view = len(seen) / total_edges
            elif observer in self.users and total_edges:
                # A peer knows its own friendships.
                graph_view = self.graph.degree(observer) / total_edges
            reports.append(ExposureReport(
                observer=observer,
                content_view=(readable / total_content
                              if total_content else 0.0),
                metadata_view=(len(stored & set(self._catalog))
                               / total_content if total_content else 0.0),
                graph_view=graph_view))
        return reports

    def worst_observer(self) -> ExposureReport:
        """The single most-exposed observer (the paper's headline metric)."""
        reports = self.exposure_report()
        if not reports:
            return ExposureReport(observer="nobody", content_view=0.0,
                                  metadata_view=0.0, graph_view=0.0)
        return max(reports,
                   key=lambda r: (r.content_view, r.metadata_view,
                                  r.graph_view))
