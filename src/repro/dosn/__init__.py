"""The core DOSN library: users, content, storage architectures, feeds.

This package composes the substrates — crypto (:mod:`repro.crypto`), access
control (:mod:`repro.acl`), integrity (:mod:`repro.integrity`) and overlays
(:mod:`repro.overlay`) — into the user-facing social network the paper
surveys.  Entry point: :class:`repro.dosn.api.DosnNetwork`.
"""

from repro.dosn.api import ARCHITECTURES, DosnConfig, DosnNetwork
from repro.dosn.content import Post, Profile, ProfileField, content_id
from repro.dosn.feed import FeedItem, FeedReport, assemble_feed
from repro.dosn.identity import Identity, KeyRegistry, create_identity
from repro.dosn.provider import CentralProvider, ExposureReport
from repro.dosn.results import READ_SOURCES, ReadResult
from repro.dosn.storage import FetchedBlob, StorageBackend
from repro.dosn.user import DosnUser, VerifiedPost

__all__ = [
    "ARCHITECTURES", "CentralProvider", "DosnConfig", "DosnNetwork",
    "DosnUser",
    "ExposureReport", "FeedItem", "FeedReport", "FetchedBlob", "Identity",
    "KeyRegistry",
    "Post", "Profile", "ProfileField", "READ_SOURCES", "ReadResult",
    "StorageBackend", "VerifiedPost", "assemble_feed",
    "content_id", "create_identity",
]
