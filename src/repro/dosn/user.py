"""The DOSN peer: identity + encryption + integrity + storage, composed.

"Every user is equally privileged participant, and can be the source and
destination of the provided information" (Section I).  A :class:`DosnUser`
is exactly that: it owns its identity and keys, encrypts content for its
friend group before anything touches storage, hash-chains and signs every
post, and decrypts/verifies everything it reads.

Wire format: a post blob is a JSON document carrying the plaintext post
fields plus the author's Schnorr signature; when the network runs with
encryption enabled the JSON is wrapped in the author's group
:class:`~repro.crypto.symmetric.StreamCipher`.  Group keys reach friends
through the out-of-band channel of :mod:`repro.dosn.identity` (the paper's
solved-key-distribution assumption); the *comparison* between key-
management schemes is the job of :mod:`repro.acl` and experiments E2/E3 —
here one scheme suffices to make the network concrete.
"""

from __future__ import annotations

import json
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.hashing import digest_many
from repro.crypto.signatures import SchnorrPublicKey
from repro.crypto.symmetric import StreamCipher, random_key
from repro.dosn.content import Post, Profile, content_id
from repro.dosn.identity import Identity, KeyRegistry, create_identity
from repro.exceptions import (AccessDeniedError, DecryptionError,
                              IntegrityError)
from repro.integrity.hashchain import Timeline, TimelineView
from repro.obs.trace import NOOP_TRACER


def _post_signed_bytes(author: str, sequence: int, text: str,
                       tags: Sequence[str]) -> bytes:
    return digest_many([b"repro/dosn/post", author.encode(),
                        sequence.to_bytes(8, "big"), text.encode(),
                        *(t.encode() for t in tags)])


# Deterministic virtual CPU-cost model for the crypto phases, so traced
# cost breakdowns can price decrypt/verify next to network RTTs without
# reading the (nondeterministic) wall clock.  Constants are calibrated to
# the pure-Python primitives' rough throughput on one core.
_SYM_SECONDS_PER_BYTE = 2e-6     # SHA-256-CTR stream cipher
_SIG_SECONDS_PER_OP = 5e-3       # Schnorr sign/verify at TOY level


def _crypto_cost(op: str, nbytes: int) -> float:
    """Modeled virtual seconds for one crypto phase."""
    if op in ("sign", "verify"):
        return _SIG_SECONDS_PER_OP
    return nbytes * _SYM_SECONDS_PER_BYTE


@dataclass
class VerifiedPost:
    """A post that passed signature (and optionally chain) verification."""

    author: str
    sequence: int
    text: str
    tags: Tuple[str, ...]
    content_id: str


class DosnUser:
    """One peer in the DOSN."""

    def __init__(self, name: str, registry: KeyRegistry, level: str = "TOY",
                 rng: Optional[_random.Random] = None,
                 encrypt_content: bool = True, tracer=None) -> None:
        self.name = name
        #: fabric tracer (injected by DosnNetwork); no-op by default
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.rng = rng or _random.Random(f"user/{name}")
        self.identity: Identity = create_identity(name, level, self.rng)
        self.registry = registry
        registry.register(self.identity)
        self.encrypt_content = encrypt_content
        self.friends: Set[str] = set()
        self.timeline = Timeline(name, self.identity.signer)
        self.profile = Profile(owner=name)
        #: this user's friend-group key (symmetric-ACL style)
        self.group_key: bytes = random_key(32, self.rng)
        #: keys received from friends: author -> their group key
        self.friend_keys: Dict[str, bytes] = {}
        #: verified replicas of friends' timelines
        self.views: Dict[str, TimelineView] = {}
        self.posts_published = 0

    # -- friendship -----------------------------------------------------------

    def befriend(self, other: "DosnUser") -> None:
        """Mutual friendship: exchange group keys over the OOB channel."""
        self.friends.add(other.name)
        other.friends.add(self.name)
        self.friend_keys[other.name] = other.group_key
        other.friend_keys[self.name] = self.group_key
        # Pin each other's verified timelines from the current state.
        self._ensure_view(other.name)
        other._ensure_view(self.name)

    def _ensure_view(self, author: str) -> TimelineView:
        view = self.views.get(author)
        if view is None:
            public = self.registry.get(author)
            view = TimelineView(author, public.verify_key)
            self.views[author] = view
        return view

    # -- publishing ---------------------------------------------------------------

    def seal_post(self, text: str,
                  tags: Sequence[str] = ()) -> Tuple[str, bytes]:
        """The integrity half of publishing: sign and hash-chain a post.

        Returns ``(content_id, canonical document)`` — the signed JSON
        wire form *before* any encryption.  This is the stack's
        :class:`~repro.stack.pipeline.IntegrityLayer` hook.
        """
        sequence = self.posts_published
        with self.tracer.span("crypto.sign", author=self.name) as span:
            span.add_cost(_crypto_cost("sign", 0))
            signature = self.identity.signer.sign(
                _post_signed_bytes(self.name, sequence, text, tags),
                rng=self.rng)
        document = json.dumps({
            "author": self.name, "sequence": sequence, "text": text,
            "tags": list(tags), "signature": list(signature),
        }).encode()
        cid = content_id(self.name, "post", text.encode(), sequence)
        self.timeline.publish(cid.encode(), rng=self.rng)
        self.posts_published += 1
        return cid, document

    def reseal_post(self, text: str, tags: Sequence[str],
                    sequence: int) -> Tuple[str, bytes]:
        """Re-sign and re-chain an *existing* post (same cid, new bytes).

        Content addressing pins the cid to ``(author, text, sequence)``,
        so an overwrite cannot change what the address names — but the
        Schnorr signature is randomized and re-encryption draws a fresh
        nonce, so the stored bytes do change.  Re-listing the cid on the
        hash chain is the signed overwrite announcement readers' caches
        invalidate on; ``posts_published`` is *not* advanced (the
        sequence is being reused, not extended).
        """
        if sequence >= self.posts_published:
            raise IntegrityError(
                f"cannot reseal unpublished sequence {sequence} "
                f"(published so far: {self.posts_published})")
        with self.tracer.span("crypto.sign", author=self.name) as span:
            span.add_cost(_crypto_cost("sign", 0))
            signature = self.identity.signer.sign(
                _post_signed_bytes(self.name, sequence, text, tags),
                rng=self.rng)
        document = json.dumps({
            "author": self.name, "sequence": sequence, "text": text,
            "tags": list(tags), "signature": list(signature),
        }).encode()
        cid = content_id(self.name, "post", text.encode(), sequence)
        self.timeline.publish(cid.encode(), rng=self.rng)
        return cid, document

    def protect_document(self, document: bytes) -> bytes:
        """The ACL half of publishing: group-encrypt the sealed document.

        A no-op on unencrypted networks; the stack's
        :class:`~repro.stack.pipeline.AclLayer` hook.
        """
        if not self.encrypt_content:
            return document
        with self.tracer.span("crypto.encrypt",
                              nbytes=len(document)) as span:
            span.add_cost(_crypto_cost("encrypt", len(document)))
            return StreamCipher(self.group_key).encrypt(document,
                                                        rng=self.rng)

    def compose_post(self, text: str,
                     tags: Sequence[str] = ()) -> Tuple[str, bytes]:
        """Build, sign, chain and (maybe) encrypt a post.

        Returns ``(content_id, blob)``; the caller (usually
        :class:`~repro.dosn.api.DosnNetwork`) stores the blob.  This is
        :meth:`seal_post` + :meth:`protect_document` composed, for call
        sites that do not run a full stack.
        """
        cid, document = self.seal_post(text, tags)
        return cid, self.protect_document(document)

    # -- reading --------------------------------------------------------------------

    def unlock(self, author: str, blob: bytes) -> bytes:
        """The ACL half of reading: recover the canonical document.

        Plaintext blobs (unencrypted networks) pass through; otherwise
        the author's group key must be held.  Raises
        :class:`AccessDeniedError` when we hold no (working) key.  This
        is the stack's read-path :class:`~repro.stack.pipeline.AclLayer`
        hook.
        """
        if author == self.name:
            key: Optional[bytes] = self.group_key
        else:
            key = self.friend_keys.get(author)
        try:
            json.loads(blob.decode())
            return blob  # plaintext (unencrypted network)
        except (UnicodeDecodeError, json.JSONDecodeError):
            if key is None:
                raise AccessDeniedError(
                    f"{self.name!r} holds no group key of {author!r}")
            with self.tracer.span("crypto.decrypt", author=author,
                                  nbytes=len(blob)) as span:
                span.add_cost(_crypto_cost("decrypt", len(blob)))
                try:
                    return StreamCipher(key).decrypt(blob)
                except DecryptionError:
                    raise AccessDeniedError(
                        f"{self.name!r}'s key for {author!r} does not open "
                        "this blob (revoked or rotated)")

    def verify_document(self, author: str, document: bytes,
                        expected_cid: Optional[str] = None) -> VerifiedPost:
        """The integrity half of reading: signature + address checks.

        Raises :class:`IntegrityError` on any mismatch; the stack's
        read-path :class:`~repro.stack.pipeline.IntegrityLayer` hook.
        """
        data = json.loads(document.decode())
        if data["author"] != author:
            raise IntegrityError(
                f"blob claims author {data['author']!r}, fetched as "
                f"{author!r}")
        public = self.registry.get(author)
        signed = _post_signed_bytes(data["author"], data["sequence"],
                                    data["text"], data["tags"])
        with self.tracer.span("crypto.verify", author=author) as span:
            span.add_cost(_crypto_cost("verify", 0))
            valid = public.verify_key.verify(signed,
                                             tuple(data["signature"]))
        if not valid:
            raise IntegrityError(
                "post signature invalid: owner/content integrity violated")
        cid = content_id(data["author"], "post", data["text"].encode(),
                         data["sequence"])
        if expected_cid is not None and cid != expected_cid:
            raise IntegrityError(
                "content id mismatch: storage served a different post "
                "than requested")
        return VerifiedPost(author=data["author"],
                            sequence=data["sequence"], text=data["text"],
                            tags=tuple(data["tags"]), content_id=cid)

    def open_post(self, author: str, blob: bytes,
                  expected_cid: Optional[str] = None) -> VerifiedPost:
        """Decrypt and verify a fetched post blob.

        :meth:`unlock` + :meth:`verify_document` composed — raises
        :class:`AccessDeniedError` when we hold no key for the author,
        :class:`IntegrityError` on any signature/address mismatch.
        """
        return self.verify_document(author, self.unlock(author, blob),
                                    expected_cid=expected_cid)

    # -- timeline sync (historical integrity) -------------------------------------

    def sync_timeline(self, other: "DosnUser") -> int:
        """Pull and chain-verify a friend's new timeline entries.

        Returns how many entries were accepted; raises
        :class:`IntegrityError` if the friend's published chain does not
        extend our verified view (history rewrite detection).
        """
        view = self._ensure_view(other.name)
        new_entries = other.timeline.entries[len(view.entries):]
        view.accept_all(new_entries)
        return len(new_entries)

    def verified_cids(self, author: str) -> List[str]:
        """Content ids from the author's chain-verified timeline, in order.

        A re-sealed post lists its cid more than once on the chain
        (:meth:`reseal_post`); readers want each post once, at its first
        publication position, so duplicates are dropped keeping first
        occurrence.  A no-op on chains that never resealed.
        """
        view = self.views.get(author)
        if view is None:
            return []
        seen: Set[str] = set()
        cids: List[str] = []
        for entry in view.entries:
            cid = entry.payload.decode()
            if cid not in seen:
                seen.add(cid)
                cids.append(cid)
        return cids

    # -- revocation (symmetric-ACL semantics, Section III-B) ------------------------

    def rotate_group_key(self, except_friends: Sequence[str] = ()) -> None:
        """Rekey the friend group, excluding some (revoked) friends.

        Future posts use the new key; the paper's caveat about already-
        decrypted copies applies and is tested explicitly.
        """
        self.group_key = random_key(32, self.rng)
        for friend_name in except_friends:
            self.friends.discard(friend_name)

    def redistribute_key(self, friends: Dict[str, "DosnUser"]) -> None:
        """Hand the current group key to every remaining friend."""
        for name in self.friends:
            user = friends.get(name)
            if user is not None:
                user.friend_keys[self.name] = self.group_key
