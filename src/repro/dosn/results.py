"""Typed read/feed results: what a read returned *and how much to trust it*.

:meth:`DosnNetwork.read <repro.dosn.api.DosnNetwork.read>` used to pass
the bare :class:`~repro.dosn.user.VerifiedPost` through, which left the
caller no way to tell a fresh quorum read from a degraded one, or a
cache hit from a cold fetch.  :class:`ReadResult` makes that provenance
part of the API:

* ``post`` — the decrypted, signature-verified post;
* ``verified`` — whether the full decrypt + verify pipeline ran on the
  served bytes (always ``True`` on current paths; the field exists so a
  future best-effort mode cannot masquerade as verified);
* ``degraded`` — a below-quorum read
  (:attr:`repro.storage2.ReplicationConfig.degraded_reads`): verified
  bytes, weakened freshness guarantee;
* ``source`` — ``"cache"`` (served from the reader's verified-content
  cache after a chain-head re-check), ``"quorum"`` (a verified R-of-N
  quorum read) or ``"bare"`` (first-responder / provider fetch).

For one release, attribute access that used to land on the
:class:`VerifiedPost` (``result.text``, ``result.author``, ...) keeps
working through a deprecation proxy; new code reads ``result.post.text``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.dosn.user import VerifiedPost
from repro.exceptions import ReproDeprecationWarning

__all__ = ["READ_SOURCES", "ReadResult"]

#: Legal values of :attr:`ReadResult.source`.
READ_SOURCES = ("cache", "quorum", "bare")

#: VerifiedPost fields the deprecation proxy forwards for one release.
_PROXIED = ("author", "sequence", "text", "tags", "content_id")


@dataclass
class ReadResult:
    """One read's payload plus its trust provenance."""

    post: VerifiedPost
    verified: bool = True
    degraded: bool = False
    source: str = "bare"

    def __post_init__(self) -> None:
        if self.source not in READ_SOURCES:
            raise ValueError(
                f"ReadResult.source must be one of {READ_SOURCES}, "
                f"got {self.source!r}")

    def __getattr__(self, name: str):
        # Only reached for attributes not on ReadResult itself: the
        # pre-typed API handed the VerifiedPost straight to callers, so
        # forward its fields for one release with a warning.
        if name in _PROXIED:
            warnings.warn(
                f"ReadResult.{name} is deprecated; read "
                f"ReadResult.post.{name} instead (the typed result "
                "carries the post under .post)",
                ReproDeprecationWarning, stacklevel=2)
            return getattr(self.post, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")
