"""Content objects: posts, comments, profiles, and content addressing.

The storage layer is content-addressed (ids are digests of canonical
encodings) so any replica or provider returning a blob can be checked
against the id it was requested under — the cheapest integrity mechanism of
all, complementing the signatures from Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto.hashing import digest_many, hexdigest
from repro.exceptions import IntegrityError


def content_id(author: str, kind: str, payload: bytes,
               sequence: int) -> str:
    """A stable content address for an object."""
    raw = digest_many([b"repro/content", author.encode(), kind.encode(),
                       payload, sequence.to_bytes(8, "big")])
    return raw.hex()[:32]


@dataclass(frozen=True)
class Post:
    """A wall post (plaintext form, before ACL encryption)."""

    author: str
    sequence: int
    text: str
    tags: Tuple[str, ...] = ()
    audience: str = "friends"   # the owner's group this is shared with

    def encode(self) -> bytes:
        """Canonical byte encoding (what gets encrypted and signed)."""
        return digest_many([
            b"repro/post", self.author.encode(),
            self.sequence.to_bytes(8, "big"), self.text.encode(),
            *(t.encode() for t in self.tags), self.audience.encode(),
        ]) + self.text.encode()

    @property
    def content_id(self) -> str:
        """The post's content address."""
        return content_id(self.author, "post", self.text.encode(),
                          self.sequence)


@dataclass(frozen=True)
class ProfileField:
    """One profile attribute with its visibility class."""

    name: str
    value: str
    visibility: str = "friends"  # "public" | "friends" | group name


@dataclass
class Profile:
    """A user profile: named fields with per-field visibility."""

    owner: str
    fields: Dict[str, ProfileField] = field(default_factory=dict)

    def set(self, name: str, value: str,
            visibility: str = "friends") -> ProfileField:
        """Set/replace a field."""
        entry = ProfileField(name=name, value=value, visibility=visibility)
        self.fields[name] = entry
        return entry

    def visible_to(self, visibility_classes: Tuple[str, ...]
                   ) -> Dict[str, str]:
        """Fields whose visibility is in the given classes."""
        return {f.name: f.value for f in self.fields.values()
                if f.visibility in visibility_classes}

    def public_view(self) -> Dict[str, str]:
        """What strangers (and providers, absent encryption) see."""
        return self.visible_to(("public",))


def verify_content_address(expected_id: str, author: str, kind: str,
                           payload: bytes, sequence: int) -> None:
    """Check a retrieved blob against the address it was fetched under."""
    actual = content_id(author, kind, payload, sequence)
    if actual != expected_id:
        raise IntegrityError(
            f"content address mismatch: requested {expected_id}, "
            f"blob hashes to {actual} (replica served tampered data)")
