"""News-feed assembly with end-to-end verification.

A user's feed is the union of their friends' timelines.  Assembling it
exercises every integrity layer at once: the hash chain proves no friend's
history was truncated or reordered (Section IV-B), the per-post signature
proves owner/content integrity (IV-A), the content address proves the
storage layer served the blob that was asked for, and decryption enforces
the access policy (Section III).

:func:`assemble_feed` reports problems instead of silently dropping them —
a feed that quietly hides a friend's censored post is exactly the
equivocation the paper warns about.

Two fetch strategies share the same verification semantics:

* the **sequential** path (default): sync a friend, fetch and open each
  of their posts, move to the next friend — one storage round-trip per
  post.  This is the original loop, kept byte-identical for the
  committed experiment baselines;
* the **batched** path (``fetch_many=``): sync *all* friends first, then
  fetch every still-needed cid in one
  :meth:`~repro.dosn.storage.StorageBackend.get_many` call (one route /
  RPC per holder instead of one per post), optionally consulting a
  :class:`~repro.cache.VerifiedContentCache` so unchanged posts skip the
  fetch + decrypt + verify entirely.  Cache hits are only served after
  re-checking the entry against the friend's *current* chain-verified
  head — stale copies are evicted, never shown.

Every :class:`FeedItem` carries a typed
:class:`~repro.dosn.results.ReadResult` recording where its bytes came
from (``cache`` / ``quorum`` / ``bare``) and whether the read was
degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dosn.results import ReadResult
from repro.dosn.user import DosnUser, VerifiedPost
from repro.exceptions import (AccessDeniedError, IntegrityError, ReproError,
                              StorageError)


@dataclass
class FeedItem:
    """One verified feed entry."""

    post: VerifiedPost
    author: str
    #: provenance of this entry's bytes (source / degraded / verified)
    result: Optional[ReadResult] = None


@dataclass
class FeedReport:
    """The assembled feed plus anything that failed verification."""

    items: List[FeedItem] = field(default_factory=list)
    unavailable: List[Tuple[str, str]] = field(default_factory=list)
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every friend's every post arrived and verified."""
        return not self.unavailable and not self.violations

    def from_source(self, source: str) -> List[FeedItem]:
        """The entries whose bytes came from ``source`` (cache/quorum/bare)."""
        return [item for item in self.items
                if item.result is not None and item.result.source == source]


def _provenance(blob) -> Tuple[bytes, str, bool, Optional[int]]:
    """Unpack a fetch return: raw bytes or a FetchedBlob-like carrier."""
    payload = getattr(blob, "blob", blob)
    return (payload, getattr(blob, "source", "bare"),
            getattr(blob, "degraded", False),
            getattr(blob, "version", None))


def assemble_feed(reader: DosnUser, friends: Dict[str, DosnUser],
                  fetch: Callable[[str, str], bytes],
                  limit_per_friend: Optional[int] = None,
                  open_post: Optional[
                      Callable[[str, bytes, str], VerifiedPost]] = None,
                  fetch_many: Optional[
                      Callable[[str, List[str]], Dict[str, object]]] = None,
                  cache=None) -> FeedReport:
    """Build ``reader``'s verified feed.

    ``fetch(reader_name, cid) -> blob`` abstracts the storage backend
    (plain bytes or a :class:`~repro.dosn.storage.FetchedBlob` both
    work); ``open_post(author, blob, cid) -> VerifiedPost`` abstracts the
    decrypt+verify pipeline (defaults to the reader's own
    :meth:`~repro.dosn.user.DosnUser.open_post` — networks with a
    :class:`~repro.stack.pipeline.ProtectionStack` pass their stack's
    ACL/integrity read path here).  For each friend: sync + chain-verify
    their timeline, then fetch, decrypt and signature-verify each
    referenced post.

    Passing ``fetch_many(reader_name, cids) -> {cid: blob | exception}``
    switches to the batched strategy; ``cache`` (a
    :class:`~repro.cache.VerifiedContentCache`) additionally serves
    chain-validated hits without fetching, and is seeded with every post
    this assembly verifies (degraded reads are never cached).

    Latency model: the feed inherits whatever the storage backend pays.
    Under :attr:`Simulator.concurrent` the batched strategy's single
    ``fetch_many`` rides the backend's parallel fan-out (one overlapped
    probe per holder — see :meth:`ReplicatedStore.get_many` and
    :meth:`ChordRing.get_many`), so a warm batched feed costs roughly the
    slowest holder instead of the sum of all of them; the sequential
    strategy's per-cid fetches remain dependent and still sum.
    """
    if open_post is None:
        open_post = (lambda author, blob, cid:
                     reader.open_post(author, blob, expected_cid=cid))
    if fetch_many is None and cache is not None:
        # Cache without a batch-capable backend: emulate the batched
        # contract sequentially so there is one cached code path.
        def fetch_many(r: str, cids: List[str]) -> Dict[str, object]:
            out: Dict[str, object] = {}
            for cid in cids:
                if cid in out:
                    continue
                try:
                    out[cid] = fetch(r, cid)
                except ReproError as exc:
                    out[cid] = exc
            return out
    if fetch_many is not None:
        return _assemble_batched(reader, friends, fetch_many,
                                 limit_per_friend, open_post, cache)
    report = FeedReport()
    for name in sorted(reader.friends):
        friend = friends.get(name)
        if friend is None:
            continue
        try:
            reader.sync_timeline(friend)
        except IntegrityError as exc:
            report.violations.append((name, f"timeline: {exc}"))
            continue
        cids = reader.verified_cids(name)
        if limit_per_friend is not None:
            cids = cids[-limit_per_friend:]
        for cid in cids:
            try:
                blob = fetch(reader.name, cid)
            except (StorageError, ReproError) as exc:
                report.unavailable.append((cid, str(exc)))
                continue
            payload, source, degraded, _ = _provenance(blob)
            try:
                post = open_post(name, payload, cid)
            except (IntegrityError, AccessDeniedError) as exc:
                report.violations.append((name, f"{cid}: {exc}"))
                continue
            report.items.append(FeedItem(
                post=post, author=name,
                result=ReadResult(post, verified=True, degraded=degraded,
                                  source=source)))
    report.items.sort(key=lambda item: (item.author, item.post.sequence))
    return report


def _assemble_batched(reader: DosnUser, friends: Dict[str, DosnUser],
                      fetch_many: Callable[[str, List[str]],
                                           Dict[str, object]],
                      limit_per_friend: Optional[int],
                      open_post: Callable[[str, bytes, str], VerifiedPost],
                      cache) -> FeedReport:
    """The batched strategy: sync everyone, then fetch misses in one call."""
    report = FeedReport()
    plan: List[Tuple[str, str]] = []   # (author, cid) still needing a fetch
    for name in sorted(reader.friends):
        friend = friends.get(name)
        if friend is None:
            continue
        try:
            reader.sync_timeline(friend)
        except IntegrityError as exc:
            report.violations.append((name, f"timeline: {exc}"))
            continue
        cids = reader.verified_cids(name)
        if limit_per_friend is not None:
            cids = cids[-limit_per_friend:]
        for cid in cids:
            if cache is not None:
                entry = cache.lookup(reader.name, name, cid,
                                     reader.views.get(name))
                if entry is not None:
                    report.items.append(FeedItem(
                        post=entry.post, author=name,
                        result=ReadResult(entry.post, verified=True,
                                          degraded=False, source="cache")))
                    continue
            plan.append((name, cid))
    blobs: Dict[str, object] = {}
    if plan:
        blobs = fetch_many(reader.name, [cid for _, cid in plan])
    for name, cid in plan:
        got = blobs.get(cid)
        if got is None or isinstance(got, Exception):
            report.unavailable.append(
                (cid, str(got) if got is not None
                 else "missing from batched fetch"))
            continue
        payload, source, degraded, version = _provenance(got)
        try:
            post = open_post(name, payload, cid)
        except (IntegrityError, AccessDeniedError) as exc:
            report.violations.append((name, f"{cid}: {exc}"))
            continue
        report.items.append(FeedItem(
            post=post, author=name,
            result=ReadResult(post, verified=True, degraded=degraded,
                              source=source)))
        if cache is not None and not degraded:
            view = reader.views.get(name)
            if view is not None:
                cache.insert(reader.name, name, cid, post, view,
                             version=version)
    report.items.sort(key=lambda item: (item.author, item.post.sequence))
    return report
