"""News-feed assembly with end-to-end verification.

A user's feed is the union of their friends' timelines.  Assembling it
exercises every integrity layer at once: the hash chain proves no friend's
history was truncated or reordered (Section IV-B), the per-post signature
proves owner/content integrity (IV-A), the content address proves the
storage layer served the blob that was asked for, and decryption enforces
the access policy (Section III).

:func:`assemble_feed` reports problems instead of silently dropping them —
a feed that quietly hides a friend's censored post is exactly the
equivocation the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dosn.user import DosnUser, VerifiedPost
from repro.exceptions import (AccessDeniedError, IntegrityError, ReproError,
                              StorageError)


@dataclass
class FeedItem:
    """One verified feed entry."""

    post: VerifiedPost
    author: str


@dataclass
class FeedReport:
    """The assembled feed plus anything that failed verification."""

    items: List[FeedItem] = field(default_factory=list)
    unavailable: List[Tuple[str, str]] = field(default_factory=list)
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every friend's every post arrived and verified."""
        return not self.unavailable and not self.violations


def assemble_feed(reader: DosnUser, friends: Dict[str, DosnUser],
                  fetch: Callable[[str, str], bytes],
                  limit_per_friend: Optional[int] = None,
                  open_post: Optional[
                      Callable[[str, bytes, str], VerifiedPost]] = None
                  ) -> FeedReport:
    """Build ``reader``'s verified feed.

    ``fetch(reader_name, cid) -> blob`` abstracts the storage backend;
    ``open_post(author, blob, cid) -> VerifiedPost`` abstracts the
    decrypt+verify pipeline (defaults to the reader's own
    :meth:`~repro.dosn.user.DosnUser.open_post` — networks with a
    :class:`~repro.stack.pipeline.ProtectionStack` pass their stack's
    ACL/integrity read path here).  For each friend: sync + chain-verify
    their timeline, then fetch, decrypt and signature-verify each
    referenced post.
    """
    if open_post is None:
        open_post = (lambda author, blob, cid:
                     reader.open_post(author, blob, expected_cid=cid))
    report = FeedReport()
    for name in sorted(reader.friends):
        friend = friends.get(name)
        if friend is None:
            continue
        try:
            reader.sync_timeline(friend)
        except IntegrityError as exc:
            report.violations.append((name, f"timeline: {exc}"))
            continue
        cids = reader.verified_cids(name)
        if limit_per_friend is not None:
            cids = cids[-limit_per_friend:]
        for cid in cids:
            try:
                blob = fetch(reader.name, cid)
            except (StorageError, ReproError) as exc:
                report.unavailable.append((cid, str(exc)))
                continue
            try:
                post = open_post(name, blob, cid)
            except (IntegrityError, AccessDeniedError) as exc:
                report.violations.append((name, f"{cid}: {exc}"))
                continue
            report.items.append(FeedItem(post=post, author=name))
    report.items.sort(key=lambda item: (item.author, item.post.sequence))
    return report
