"""Process-global instrumentation hooks for the crypto substrate.

The crypto primitives are pure functions with no handle on a network or a
fabric, yet they are exactly where *wall-clock* time goes in a simulation
run (the simulator charges them zero virtual time).  This module gives
them a hook that costs one module-attribute check per operation when
profiling is off:

    from repro.obs import hooks
    ...
    with hooks.crypto_op("stream.encrypt", len(plaintext)):
        <do the work>

:func:`profile_crypto` installs a profiler for the duration of a ``with``
block; measurements land in the supplied :class:`MetricsRegistry` as

* ``crypto.<op>.wall_ns``  — wall-clock histogram per operation,
* ``crypto.ops{op=...}``   — operation counter,
* ``crypto.bytes{op=...}`` — bytes processed per operation.

The counters are deterministic; only the ``.wall_ns`` histograms carry
nondeterministic values, consistent with the segregation rule in
:mod:`repro.obs.trace`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from repro.obs.metrics import WALL_NS_BUCKETS, MetricsRegistry

__all__ = ["crypto_op", "profile_crypto", "CryptoProfiler"]


class CryptoProfiler:
    """Records per-primitive wall time and volume into a registry."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def record(self, op: str, wall_ns: int, nbytes: int) -> None:
        self.metrics.inc("crypto.ops", op=op)
        if nbytes:
            self.metrics.inc("crypto.bytes", amount=nbytes, op=op)
        self.metrics.observe(f"crypto.{op}.wall_ns", wall_ns,
                             bounds=WALL_NS_BUCKETS)


#: The installed profiler; ``None`` means profiling is off (the default).
ACTIVE: Optional[CryptoProfiler] = None


class _Timed:
    __slots__ = ("op", "nbytes", "_start")

    def __init__(self, op: str, nbytes: int) -> None:
        self.op = op
        self.nbytes = nbytes
        self._start = 0

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        profiler = ACTIVE
        if profiler is not None:
            profiler.record(self.op, time.perf_counter_ns() - self._start,
                            self.nbytes)
        return False


class _NoopOp:
    __slots__ = ()

    def __enter__(self) -> "_NoopOp":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_OP = _NoopOp()


def crypto_op(op: str, nbytes: int = 0):
    """Context manager timing one primitive invocation (no-op when off)."""
    if ACTIVE is None:
        return _NOOP_OP
    return _Timed(op, nbytes)


@contextlib.contextmanager
def profile_crypto(metrics: MetricsRegistry) -> Iterator[CryptoProfiler]:
    """Enable crypto wall-clock profiling within a ``with`` block."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = CryptoProfiler(metrics)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous
