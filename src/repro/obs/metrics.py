"""Dimensional metrics: counters, gauges, and fixed-bucket histograms.

:class:`MetricsRegistry` is the successor of the flat
:class:`repro.overlay.network.NetworkStats` counters: every instrument
carries a name plus sorted ``(label, value)`` dimensions, so the fabric can
attribute a drop to *which* message kind, *which* fault cause, and *which*
direction instead of bumping one aggregate integer.  ``NetworkStats``
remains as the cheap legacy view (benchmarks read it everywhere);
:meth:`MetricsRegistry.absorb_network` imports its aggregates into the
registry so one exporter sees both worlds.

Histograms use fixed bucket bounds, so merging and percentile estimation
are deterministic and O(buckets); :meth:`Histogram.percentile` linearly
interpolates inside the winning bucket (the classic Prometheus
``histogram_quantile`` estimator).

Everything here is pure bookkeeping — no randomness, no wall-clock reads —
except :meth:`MetricsRegistry.timer`, which is the explicitly wall-clock
profiling hook (used around crypto primitives) and records nanoseconds
into a histogram kept apart from the virtual-time instruments by the
``.wall_ns`` name suffix convention.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "WALL_NS_BUCKETS"]

LabelItems = Tuple[Tuple[str, Any], ...]

#: Default bounds for virtual-seconds histograms (latency-shaped).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0)

#: Default bounds for wall-clock nanosecond histograms (crypto profiling).
WALL_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 1e9)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depths, ring sizes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with deterministic percentile estimation.

    ``bounds`` are inclusive upper edges; an implicit +inf bucket catches
    the overflow.  ``observe`` is O(buckets) via linear scan — bounds are
    short tuples, and the scan beats bisect's call overhead at this size.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile, ``p`` in [0, 100].

        Linear interpolation inside the winning bucket; the overflow
        bucket reports the observed maximum (we track it exactly).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i == len(self.bounds):  # overflow bucket
                    return float(self.maximum)
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return float(self.maximum)  # pragma: no cover - rank <= count


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelItems], Any] = {}

    # -- instrument accessors -------------------------------------------------

    def _get(self, kind: str, factory, name: str, labels: Dict[str, Any],
             **kwargs: Any):
        key = (kind, name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[2], **kwargs)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get("histogram", Histogram, name, labels, bounds=bounds)

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Shorthand: bump a counter by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS,
                **labels: Any) -> None:
        """Shorthand: record one histogram observation."""
        self.histogram(name, bounds=bounds, **labels).observe(value)

    def timer(self, name: str, **labels: Any) -> "_Timer":
        """Wall-clock context manager recording ns into ``<name>.wall_ns``.

        This is the one deliberately nondeterministic instrument; keep its
        output out of byte-compared artifacts.
        """
        return _Timer(self.histogram(f"{name}.wall_ns",
                                     bounds=WALL_NS_BUCKETS, **labels))

    # -- legacy absorption ----------------------------------------------------

    def absorb_network(self, network: Any, prefix: str = "net.") -> None:
        """Import a :class:`NetworkStats` snapshot into the registry.

        Called at export time so the flat legacy counters and the
        dimensional ones land in one table; per-kind message counts become
        ``net.messages_by_kind{kind=...}``.
        """
        stats = network.stats if hasattr(network, "stats") else network
        for field_name in ("messages", "bytes", "drops", "timeouts",
                          "retries", "breaker_trips", "breaker_fastfails",
                          "hedges", "fault_drops", "corrupted"):
            counter = self.counter(prefix + field_name)
            counter.value = getattr(stats, field_name)
        for kind, count in stats.by_kind.items():
            counter = self.counter(prefix + "messages_by_kind", kind=kind)
            counter.value = count

    # -- introspection --------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        """Instruments in deterministic (kind, name, labels) order."""
        for key in sorted(self._instruments,
                          key=lambda k: (k[1], k[0], str(k[2]))):
            yield self._instruments[key]

    def get_counter_value(self, name: str, **labels: Any) -> int:
        """Read a counter without creating it (0 when absent)."""
        key = ("counter", name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        return instrument.value if instrument is not None else 0

    def clear(self) -> None:
        self._instruments.clear()


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter_ns() - self._start)
        return False
