"""Exporters: JSONL traces, flamegraph-style text, and metrics tables.

Three consumers, three formats:

* :func:`trace_to_jsonl` — one JSON object per finished span, in
  completion order, ``sort_keys=True``.  Deterministic byte-for-byte at a
  fixed seed; wall-clock fields are excluded unless ``include_wall=True``
  (the acceptance gate for E13 diffs two runs of this output);
* :func:`flame_summary` — an indented tree aggregated by span path with
  inclusive/self virtual cost, for humans reading a benchmark log;
* :func:`metrics_rows` — ``(headers, rows)`` ready for
  ``benchmarks._reporting.report_table``;
* :func:`cost_breakdown` — the per-phase table (route vs fetch vs decrypt
  vs verify) the E13 experiment reports, built from real spans.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = ["trace_to_jsonl", "flame_summary", "metrics_rows",
           "cost_breakdown", "DOSN_PHASES"]


# -- JSONL ---------------------------------------------------------------------

def trace_to_jsonl(tracer: Tracer, path: Optional[str] = None,
                   include_wall: bool = False) -> str:
    """Serialize finished spans; optionally also write them to ``path``.

    ``include_wall=False`` (the default) keeps the output a pure function
    of the seed: ``wall_ns`` is the only nondeterministic span field and
    it is dropped here, not zeroed — so a diff cannot even see that wall
    profiling was on.
    """
    lines = []
    for span in tracer.spans:
        record: Dict[str, Any] = {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": round(span.start, 9),
            "end": round(span.end if span.end is not None else span.start, 9),
            "cost": round(span.cost, 9),
            "attrs": span.attrs,
        }
        if include_wall and span.wall_ns is not None:
            record["wall_ns"] = span.wall_ns
        lines.append(json.dumps(record, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


# -- flamegraph-style summary --------------------------------------------------

def _span_paths(spans: Sequence[Span]) -> Dict[int, Tuple[str, ...]]:
    """span id -> root-to-span name path."""
    by_id = {span.span_id: span for span in spans}
    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(span: Span) -> Tuple[str, ...]:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        if span.parent_id is None or span.parent_id not in by_id:
            result: Tuple[str, ...] = (span.name,)
        else:
            result = path_of(by_id[span.parent_id]) + (span.name,)
        paths[span.span_id] = result
        return result

    for span in spans:
        path_of(span)
    return paths


def flame_summary(tracer: Tracer, min_cost: float = 0.0) -> str:
    """Aggregate spans by path; print an indented cost tree.

    ``cost`` is inclusive of synchronously nested children (the tracer
    rolls it up), so self cost is inclusive minus the children's inclusive
    sum.  Paths cheaper than ``min_cost`` virtual seconds are elided.
    """
    spans = tracer.spans
    if not spans:
        return "(no spans recorded)"
    paths = _span_paths(spans)
    inclusive: Dict[Tuple[str, ...], float] = defaultdict(float)
    counts: Dict[Tuple[str, ...], int] = defaultdict(int)
    for span in spans:
        path = paths[span.span_id]
        inclusive[path] += span.cost
        counts[path] += 1
    child_sums: Dict[Tuple[str, ...], float] = defaultdict(float)
    for path, cost in inclusive.items():
        if len(path) > 1:
            child_sums[path[:-1]] += cost
    lines = [f"{'virtual s':>10}  {'self s':>10}  {'count':>7}  span path"]
    for path in sorted(inclusive,
                       key=lambda p: (-inclusive[p[:1]], p)):
        cost = inclusive[path]
        if cost < min_cost and len(path) > 1:
            continue
        self_cost = cost - child_sums.get(path, 0.0)
        if abs(self_cost) < 1e-9:  # float-summation noise, not real cost
            self_cost = 0.0
        indent = "  " * (len(path) - 1)
        lines.append(f"{cost:>10.4f}  {self_cost:>10.4f}  "
                     f"{counts[path]:>7}  {indent}{path[-1]}")
    return "\n".join(lines)


# -- metrics table -------------------------------------------------------------

def metrics_rows(metrics: MetricsRegistry
                 ) -> Tuple[List[str], List[List[object]]]:
    """Flatten a registry into ``report_table``-compatible rows.

    Histograms render as one row with count/mean/p50/p99; wall-clock
    histograms (``.wall_ns`` suffix) are skipped by default callers that
    need determinism — they carry real time, so they are flagged in the
    ``kind`` column instead of silently mixed in.
    """
    headers = ["Metric", "Labels", "Kind", "Value", "p50", "p99"]
    rows: List[List[object]] = []
    for instrument in metrics:
        labels = ", ".join(f"{k}={v}" for k, v in instrument.labels)
        if isinstance(instrument, Histogram):
            kind = ("histogram (wall)" if instrument.name.endswith(".wall_ns")
                    else "histogram")
            rows.append([instrument.name, labels, kind,
                         f"n={instrument.count} mean={instrument.mean:.4g}",
                         f"{instrument.percentile(50):.4g}",
                         f"{instrument.percentile(99):.4g}"])
        else:
            rows.append([instrument.name, labels, instrument.kind,
                         instrument.value, "", ""])
    return headers, rows


# -- per-phase cost breakdown (experiment E13) ---------------------------------

#: Default phase attribution for the DOSN stack: leaf span -> phase.
#: RPC spans are classified by their ``kind`` attribute, crypto spans by
#: name — matching how the overlay and user layers tag their work.
DOSN_PHASES: Dict[str, Callable[[Span], bool]] = {
    "route hops": lambda s: s.name == "net.rpc" and s.attrs.get("kind") in
    ("chord_step", "chord_final", "chord_stabilize", "kad_find"),
    "storage fetch": lambda s: s.name == "net.rpc" and s.attrs.get("kind") in
    ("chord_replica_read", "chord_replicate", "kad_store"),
    "decrypt": lambda s: s.name == "crypto.decrypt",
    "verify": lambda s: s.name == "crypto.verify",
    "encrypt": lambda s: s.name == "crypto.encrypt",
    "sign": lambda s: s.name == "crypto.sign",
}


def cost_breakdown(tracer: Tracer,
                   phases: Optional[Mapping[str, Callable[[Span], bool]]]
                   = None) -> Tuple[List[str], List[List[object]]]:
    """Attribute leaf-span cost to named phases.

    Returns ``(headers, rows)``: spans matched, accounted virtual seconds,
    and wall milliseconds.  The wall column is ``-`` when no span carried
    wall measurements, so the deterministic table stays byte-stable with
    wall profiling off.
    """
    phases = DOSN_PHASES if phases is None else phases
    headers = ["Phase", "Spans", "Virtual s", "Wall ms"]
    rows: List[List[object]] = []
    for phase_name, matches in phases.items():
        count = 0
        virtual = 0.0
        wall_ns = 0
        any_wall = False
        for span in tracer.spans:
            if not matches(span):
                continue
            count += 1
            virtual += span.cost
            if span.wall_ns is not None:
                wall_ns += span.wall_ns
                any_wall = True
        rows.append([phase_name, count, round(virtual, 6),
                     f"{wall_ns / 1e6:.2f}" if any_wall else "-"])
    return headers, rows
