"""Observability fabric: virtual-time tracing, metrics, and exporters.

The paper's cost claims (who pays for lookup, group creation, revocation
under each architecture) are quantitative claims about *where time and
messages go*; this package is the layer that answers them:

* :mod:`repro.obs.trace`   — hierarchical spans keyed to virtual sim time
  (:class:`Tracer`), with a near-zero-cost :class:`NoopTracer` default;
* :mod:`repro.obs.metrics` — dimensional counters/gauges/histograms
  (:class:`MetricsRegistry`), superseding the flat ``NetworkStats``;
* :mod:`repro.obs.hooks`   — wall-clock profiling hooks around the crypto
  primitives (:func:`profile_crypto`);
* :mod:`repro.obs.export`  — JSONL trace dumps, flamegraph-style text
  summaries, and ``report_table``-compatible metric/breakdown tables.

Deterministic by construction: span ids, virtual timestamps, and counter
values are pure functions of the seed; anything wall-clock lives in
segregated fields the deterministic exporters never emit.

The :class:`repro.fabric.Fabric` context object bundles a tracer and a
registry with the simulator/network/channel stack and injects them into
every subsystem — see docs/observability.md for the migration guide.
"""

from repro.obs.export import (DOSN_PHASES, cost_breakdown, flame_summary,
                              metrics_rows, trace_to_jsonl)
from repro.obs.hooks import CryptoProfiler, crypto_op, profile_crypto
from repro.obs.metrics import (DEFAULT_BUCKETS, WALL_NS_BUCKETS, Counter,
                               Gauge, Histogram, MetricsRegistry)
from repro.obs.trace import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Counter", "CryptoProfiler", "DEFAULT_BUCKETS", "DOSN_PHASES", "Gauge",
    "Histogram", "MetricsRegistry", "NOOP_TRACER", "NoopTracer", "Span",
    "Tracer", "WALL_NS_BUCKETS", "cost_breakdown", "crypto_op",
    "flame_summary", "metrics_rows", "profile_crypto", "trace_to_jsonl",
]
