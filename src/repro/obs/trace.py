"""Hierarchical tracing keyed to virtual simulation time.

The discrete-event substrate makes wall-clock timestamps meaningless for
most questions the experiments ask ("where does lookup latency go?"), so
spans here are anchored to the simulator's **virtual** clock.  Because the
accounted-RPC shortcut (:meth:`repro.overlay.network.SimNetwork.rpc`)
returns an RTT without advancing the clock, a span additionally carries an
explicit **cost** — the accounted virtual seconds attributed to it — which
instrumented code adds via :meth:`Span.add_cost`.  The exporters aggregate
over cost, not ``end - start``.

Design constraints (see docs/observability.md):

* **determinism** — span ids come from a monotone counter, timestamps from
  the virtual clock, and attributes from protocol state; two runs at the
  same seed produce byte-identical traces.  Wall-clock measurements are
  *segregated* into the ``wall_ns`` field, which exporters exclude unless
  explicitly asked for;
* **near-zero cost when disabled** — the default :class:`NoopTracer`
  hands out one shared no-op span, so an uninstrumented run pays a single
  attribute check plus one method call per span site;
* **parent/child propagation** — synchronous instrumentation nests via a
  span stack; asynchronous hand-offs (``SimNetwork.send`` scheduling a
  delivery) capture the current span id and reparent explicitly with the
  ``parent`` argument to :meth:`Tracer.span`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["NOOP_TRACER", "NoopTracer", "Span", "Tracer"]


class Span:
    """One traced operation: a name, virtual-time bounds, and attributes.

    A span opened with ``parallel=True`` models a fan-out whose children
    overlap on the virtual clock: finished children contribute the
    **max** of their costs instead of the sum (message/byte counters are
    network statistics and still add — only latency attribution changes).
    :meth:`settle_cost` overrides the roll-up entirely with an exact
    critical-path value, e.g. a quorum's R-th completion.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "cost",
                 "attrs", "wall_ns", "parallel", "_child_max", "_settled",
                 "_tracer", "_wall_start")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start: float, tracer: "Tracer",
                 parallel: bool = False) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        #: accounted virtual seconds (RTTs, timeouts, backoff waits)
        self.cost: float = 0.0
        self.attrs: Dict[str, Any] = {}
        #: segregated wall-clock duration; ``None`` unless the tracer
        #: profiles wall time — exporters must keep this out of the
        #: deterministic output
        self.wall_ns: Optional[int] = None
        #: children overlap: they roll up as max, not sum
        self.parallel = parallel
        self._child_max: float = 0.0
        self._settled = False
        self._tracer = tracer
        self._wall_start: Optional[int] = None

    def set_attr(self, key: str, value: Any) -> "Span":
        """Attach one attribute (deterministic values only)."""
        self.attrs[key] = value
        return self

    def add_cost(self, seconds: float) -> "Span":
        """Attribute ``seconds`` of accounted virtual time to this span."""
        self.cost += seconds
        return self

    def settle_cost(self, seconds: float) -> "Span":
        """Pin the span's cost to an exact critical-path value.

        Replaces whatever children rolled up (and suppresses any pending
        parallel roll-up) — used by quorum consumers whose settle point
        is the R-th completion, which neither sum nor max expresses.
        """
        self.cost = seconds
        self._settled = True
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self, failed=exc_type is not None)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, cost={self.cost:.4f})")


class _NoopSpan:
    """The shared do-nothing span handed out by :class:`NoopTracer`."""

    __slots__ = ()

    name = "noop"
    span_id = -1
    parent_id = None
    start = 0.0
    end = 0.0
    cost = 0.0
    wall_ns = None
    attrs: Dict[str, Any] = {}

    parallel = False

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def add_cost(self, seconds: float) -> "_NoopSpan":
        return self

    def settle_cost(self, seconds: float) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every span site costs one check and one call."""

    enabled = False

    def span(self, name: str, parent: Optional[int] = None,
             parallel: bool = False, **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    @property
    def current(self) -> Optional[Span]:
        return None

    @property
    def current_id(self) -> Optional[int]:
        return None

    @property
    def spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


#: The process-wide disabled tracer; safe to share (it holds no state).
NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects finished :class:`Span` objects in completion order.

    ``clock`` is a zero-argument callable returning the current virtual
    time — pass ``lambda: sim.now``.  With ``wall_clock=True`` every span
    additionally records its wall-clock duration into the segregated
    ``wall_ns`` field (used to profile crypto CPU cost, which is real even
    though the simulator charges it zero virtual time).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float],
                 wall_clock: bool = False) -> None:
        self._clock = clock
        self.wall_clock = wall_clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, parent: Optional[int] = None,
             parallel: bool = False, **attrs: Any) -> Span:
        """Open a span; use as a context manager.

        The parent defaults to the innermost open span; pass ``parent=``
        to re-link across an asynchronous hand-off (scheduled delivery).
        ``parallel=True`` marks a fan-out whose children overlap: their
        costs roll up as max instead of sum (see :class:`Span`).
        """
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        span = Span(name, self._next_id, parent, self._clock(), self,
                    parallel=parallel)
        self._next_id += 1
        if attrs:
            span.attrs.update(attrs)
        if self.wall_clock:
            span._wall_start = time.perf_counter_ns()
        self._stack.append(span)
        return span

    def _finish(self, span: Span, failed: bool = False) -> None:
        if self.wall_clock and span._wall_start is not None:
            span.wall_ns = time.perf_counter_ns() - span._wall_start
        span.end = self._clock()
        if failed:
            span.attrs.setdefault("error", True)
        # A parallel span's own cost is the max its children reached,
        # unless settle_cost pinned an exact critical path.
        if span.parallel and not span._settled:
            span.cost += span._child_max
        # Roll accounted cost up into the parent so ancestor spans report
        # inclusive cost without the exporters re-walking the tree.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misnested exit (async reparenting)
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        if span.parent_id is not None and self._stack \
                and self._stack[-1].span_id == span.parent_id:
            parent = self._stack[-1]
            if parent.parallel:
                parent._child_max = max(parent._child_max, span.cost)
            else:
                parent.cost += span.cost
        self.spans.append(span)

    # -- introspection --------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    @property
    def current_id(self) -> Optional[int]:
        """The innermost open span's id (for async reparenting)."""
        return self._stack[-1].span_id if self._stack else None

    def clear(self) -> None:
        """Drop collected spans (benchmarks call between phases)."""
        self.spans.clear()
        self._stack.clear()
        self._next_id = 0
