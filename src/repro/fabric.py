"""The :class:`Fabric`: one context object for the whole simulation stack.

Before this existed, every layer threaded its collaborators by hand —
``Simulator`` into ``SimNetwork``, both into ``ChordRing``, a
``ReliableChannel`` into the ring *and* the backend, and no way to hand a
tracer to any of them.  The Fabric bundles the five cross-cutting objects

    ``sim`` · ``network`` · ``channel`` · ``tracer`` · ``metrics``

plus a lazily-split ``rng``, and is what you now pass to ``ChordRing``,
``KademliaOverlay``, ``DHTBackend`` and ``DosnNetwork``.  Passing a bare
``SimNetwork`` still works for one release but raises
:class:`repro.exceptions.ReproDeprecationWarning`.

Construction::

    from repro.fabric import Fabric

    fab = Fabric.create(seed=7)                      # plain fabric
    fab = Fabric.create(seed=7, tracing=True)        # with a real tracer
    fab = Fabric.create(seed=7, faults=plan,         # chaos + resilience
                        resilient=True)
    ring = ChordRing(fab, replication=3)             # channel wired in

Determinism note: the RNG split order matches the pre-Fabric code exactly
(``network`` first, then ``reliable-channel`` when resilient; the fabric's
own ``rng`` splits lazily on first use), so migrating a call site does not
move any experiment's random stream.
"""

from __future__ import annotations

import random as _random
import warnings
from typing import Any, Optional

from repro.exceptions import ReproDeprecationWarning, SimulationError
from repro.faults.overload import OverloadConfig, RetryBudget
from repro.faults.resilience import (CircuitBreaker, ReliableChannel,
                                     RetryPolicy)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.overlay.network import SimNetwork
from repro.overlay.simulator import Simulator

__all__ = ["Fabric"]


class Fabric:
    """Simulator + network + resilience + observability, as one handle."""

    def __init__(self, sim: Simulator, network: SimNetwork,
                 channel: Optional[ReliableChannel] = None,
                 tracer: Optional[Any] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 rng: Optional[_random.Random] = None,
                 overload: Optional[OverloadConfig] = None) -> None:
        if network.sim is not sim:
            raise SimulationError(
                "fabric network must run on the fabric simulator")
        self.sim = sim
        self.network = network
        self.channel = channel
        self.tracer = tracer if tracer is not None else network.tracer
        self.metrics = metrics if metrics is not None else network.metrics
        # Keep the network's view consistent with the fabric's.
        network.tracer = self.tracer
        network.metrics = self.metrics
        #: the attached :class:`repro.membership.SwimMembership` (None
        #: keeps every layer on the legacy oracle path, byte-identical)
        self.membership: Optional[Any] = None
        #: the attached :class:`repro.adversary.AdversaryModel` (None
        #: keeps lookups trusting and byte-identical; even attached, the
        #: adversary draws no RNG — its decisions are hash-derived)
        self.adversary: Optional[Any] = None
        #: the overload-protection config (None = fair-weather fabric,
        #: byte-identical).  Overlays and stores read
        #: :meth:`OverloadConfig.mint_deadline` from here to start a
        #: per-operation deadline at their public entry points.
        self.overload: Optional[OverloadConfig] = overload
        if overload is not None:
            network.install_overload(overload)
            if channel is not None and overload.retry_budget is not None:
                channel.retry_budget = RetryBudget(overload.retry_budget)
        self._rng = rng

    @classmethod
    def create(cls, seed: int = 0, latency: Optional[Any] = None,
               loss_rate: float = 0.0, faults: Optional[Any] = None,
               tracing: bool = False, wall_clock: bool = False,
               resilient: bool = False,
               retry: Optional[RetryPolicy] = None,
               breaker: Optional[CircuitBreaker] = None,
               concurrent: bool = False,
               overload: Optional[OverloadConfig] = None,
               adversary: Optional[Any] = None) -> "Fabric":
        """Build a full fabric from a seed.

        ``tracing=True`` installs a real :class:`~repro.obs.trace.Tracer`
        (``wall_clock=True`` additionally records segregated wall-clock
        span durations).  ``resilient=True`` — or passing ``retry`` /
        ``breaker`` — wires a :class:`ReliableChannel` that the overlays
        and backends pick up automatically.  ``concurrent=True`` switches
        the fan-out layers to critical-path latency accounting (see
        :mod:`repro.overlay.simulator`); off, every combinator reports
        the legacy serial sum, byte-identical to committed tables.
        ``overload=OverloadConfig(...)`` installs the overload-protection
        stack (per-peer service queues + shedding on the network,
        deadline minting for lookups and quorum reads, a shared retry
        budget on the channel, adaptive attempt timeouts); ``None``
        keeps the fair-weather fabric byte-identical.
        ``adversary=AdversaryConfig(...)`` attaches an
        :class:`~repro.adversary.AdversaryModel` (routing-layer attacks
        and, with a ``defense``, the secure-lookup stack); ``None`` — or
        even an attached adversary, which draws nothing — leaves every
        RNG stream untouched.
        """
        sim = Simulator(seed, concurrent=concurrent)
        tracer = Tracer(lambda: sim.now, wall_clock=wall_clock) if tracing \
            else NOOP_TRACER
        metrics = MetricsRegistry()
        network = SimNetwork(sim, latency=latency, loss_rate=loss_rate,
                             faults=faults, tracer=tracer, metrics=metrics)
        channel = None
        if resilient or retry is not None or breaker is not None:
            channel = ReliableChannel(network, retry, breaker)
        fabric = cls(sim, network, channel=channel, tracer=tracer,
                     metrics=metrics, overload=overload)
        if adversary is not None:
            from repro.adversary import AdversaryModel
            AdversaryModel(fabric, adversary)  # attaches itself
        return fabric

    def attach_membership(self, membership: Any) -> None:
        """Install a membership service as the fabric's liveness source.

        Called by ``SwimMembership.__init__``; the channel (and, through
        ``fabric.membership``, the overlays and the repair daemon) pick
        it up from here.
        """
        if self.membership is not None:
            raise SimulationError(
                "a membership service is already attached to this fabric")
        self.membership = membership
        if self.channel is not None:
            self.channel.membership = membership

    def attach_adversary(self, adversary: Any) -> None:
        """Install an adversary model (called by its constructor)."""
        if self.adversary is not None:
            raise SimulationError(
                "an adversary model is already attached to this fabric")
        self.adversary = adversary

    @property
    def rng(self) -> _random.Random:
        """A fabric-scoped RNG, split from the seed on first use.

        Lazy so that fabrics which never draw from it leave the
        simulator's random stream untouched (exact pre-Fabric streams).
        """
        if self._rng is None:
            self._rng = self.sim.split_rng("fabric")
        return self._rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Fabric(nodes={len(self.network.nodes)}, "
                f"resilient={self.channel is not None}, "
                f"tracing={self.tracer.enabled})")


def coerce_fabric(fabric_or_network: Any, caller: str) -> "Fabric":
    """Accept a :class:`Fabric` or (deprecated) a bare :class:`SimNetwork`.

    The constructors named in the PR-2 API redesign call this; the
    deprecated path wraps the network in an implicit fabric so old code
    keeps working for one release.
    """
    if isinstance(fabric_or_network, Fabric):
        return fabric_or_network
    if isinstance(fabric_or_network, SimNetwork):
        warnings.warn(
            f"passing a bare SimNetwork to {caller} is deprecated; build a "
            "repro.fabric.Fabric (Fabric.create(seed=...) or "
            "Fabric(sim, network)) and pass that instead",
            ReproDeprecationWarning, stacklevel=3)
        network = fabric_or_network
        return Fabric(network.sim, network)
    raise TypeError(
        f"{caller} expects a repro.fabric.Fabric "
        f"(got {type(fabric_or_network).__name__})")
