"""ElGamal-based proxy re-encryption (BBS98) — flyByNight's tool.

Section II-A of the paper: "A prototype Facebook application addressing
some security issues of the Facebook platform by *proxy cryptography* has
been built [flyByNight, Lucas & Borisov]."  flyByNight stores only
ciphertexts at the provider and uses proxy re-encryption so one uploaded
ciphertext can be re-targeted to each friend *by the untrusted server*
without the server ever seeing plaintext or private keys.

The Blaze–Bleumer–Strauss (1998) scheme over a Schnorr group:

* encrypt to Alice:  ``ct = (m * g^k, y_a^k)`` with ``y_a = g^a``;
* re-encryption key: ``rk(a->b) = b / a  (mod q)`` — computed by the *two
  users* from their secrets, handed to the proxy;
* proxy transform:   ``(c1, c2) -> (c1, c2^rk)`` turning a ciphertext for
  Alice into one for Bob, learning nothing;
* decrypt by Bob:    ``m = c1 / c2^(1/b)``.

Caveats faithfully modelled (and unit-tested): the scheme is
*bidirectional* (``rk(b->a) = 1/rk(a->b)``) and the proxy **colluding with
the delegatee recovers the delegator's key** (``a = b / rk``) — the trust
assumption flyByNight accepts and the paper's "small providers" framing
predicts.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hkdf
from repro.crypto.numbertheory import modinv
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import CryptoError, DecryptionError

_DEFAULT_RNG = _random.Random(0x93E)


@dataclass(frozen=True)
class PREKeyPair:
    """A user's keypair ``(a, g^a)`` in the proxy-re-encryption scheme."""

    group: SchnorrGroup
    secret: int
    public: int


#: A level-1 BBS ciphertext ``(c1, c2) = (m * g^k, y^k)``.
PRECiphertext = Tuple[int, int]


@dataclass(frozen=True)
class ReEncryptionKey:
    """The proxy's re-targeting token for one (delegator, delegatee) pair."""

    group: SchnorrGroup
    rk: int


def generate_keypair(level: str = "TOY",
                     rng: Optional[_random.Random] = None,
                     group: Optional[SchnorrGroup] = None) -> PREKeyPair:
    """Fresh PRE keypair."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    secret = group.random_scalar(rng)
    return PREKeyPair(group=group, secret=secret, public=group.exp(secret))


def encrypt_element(public: int, group: SchnorrGroup, message: int,
                    rng: Optional[_random.Random] = None) -> PRECiphertext:
    """Encrypt a group element to a PRE public key."""
    if not group.contains(message):
        raise CryptoError("message must be a subgroup element")
    rng = rng or _DEFAULT_RNG
    k = group.random_scalar(rng)
    return (group.mul(message, group.exp(k)), group.power(public, k))


def decrypt_element(key: PREKeyPair, ciphertext: PRECiphertext) -> int:
    """Decrypt: ``m = c1 / c2^(1/a)``."""
    c1, c2 = ciphertext
    group = key.group
    if not (group.contains(c1) and group.contains(c2)):
        raise DecryptionError("ciphertext components outside the subgroup")
    shared = group.power(c2, modinv(key.secret, group.q))
    return group.mul(c1, group.inverse(shared))


def rekey(delegator: PREKeyPair, delegatee: PREKeyPair) -> ReEncryptionKey:
    """``rk(a->b) = b/a``; requires both secrets (run between the users).

    In deployment the two users compute this over their private channel;
    the *proxy* only ever receives the quotient, from which neither secret
    is recoverable alone.
    """
    if delegator.group is not delegatee.group:
        raise CryptoError("keypairs from different groups")
    group = delegator.group
    return ReEncryptionKey(
        group=group,
        rk=delegatee.secret * modinv(delegator.secret, group.q) % group.q)


def reencrypt(token: ReEncryptionKey,
              ciphertext: PRECiphertext) -> PRECiphertext:
    """Proxy step: re-target a ciphertext without decrypting it."""
    c1, c2 = ciphertext
    if not token.group.contains(c2):
        raise CryptoError("ciphertext component outside the subgroup")
    return (c1, token.group.power(c2, token.rk))


def collude(token: ReEncryptionKey, delegatee: PREKeyPair) -> int:
    """The proxy+delegatee collusion attack: recover the delegator's key.

    ``a = b / rk`` — provided so tests and the E-series can demonstrate
    the trust assumption rather than hide it.
    """
    return delegatee.secret * modinv(token.rk, token.group.q) % token.group.q


# -- byte-level hybrid API ----------------------------------------------------

def encrypt_bytes(public: int, group: SchnorrGroup, message: bytes,
                  rng: Optional[_random.Random] = None
                  ) -> Tuple[PRECiphertext, bytes]:
    """KEM/DEM: PRE-wrap a random element, AEAD the payload.

    The returned header can be re-encrypted by a proxy; the payload never
    changes.
    """
    rng = rng or _DEFAULT_RNG
    kem = group.element_from_int(rng.randrange(1, group.p))
    header = encrypt_element(public, group, kem, rng)
    width = (group.p.bit_length() + 7) // 8
    key = hkdf(kem.to_bytes(width, "big"), 32, info=b"repro/pre/kem")
    return header, AuthenticatedCipher(key).encrypt(message, rng=rng)


def decrypt_bytes(key: PREKeyPair, header: PRECiphertext,
                  payload: bytes) -> bytes:
    """Invert :func:`encrypt_bytes` (after any number of re-encryptions)."""
    kem = decrypt_element(key, header)
    width = (key.group.p.bit_length() + 7) // 8
    aead_key = hkdf(kem.to_bytes(width, "big"), 32, info=b"repro/pre/kem")
    return AuthenticatedCipher(aead_key).decrypt(payload)
