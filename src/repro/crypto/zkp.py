"""Zero-knowledge proofs: Schnorr identification and NIZK variants.

Section V-B of the paper: "Zero Knowledge Proof alongside using pseudonyms
is another solution [for privacy of the searcher]. A user can use a
pseudonym while searching in the network, and when (s)he wants to reach a
content belonging to another person, (s)he uses ZKP to prove having
privileges to access."  (The Backes–Maffei–Pecina security API.)

Provided:

* interactive Schnorr proof of knowledge of a discrete log (three-move
  sigma protocol as explicit commit/challenge/respond state machines);
* the Fiat–Shamir non-interactive version (:func:`prove_dlog_nizk`), which
  is what the pseudonymous search credentials use;
* Chaum–Pedersen proof of discrete-log *equality* (used to show that a
  pseudonym and a credential share the same secret without linking them).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hash_to_int
from repro.exceptions import CryptoError

_DEFAULT_RNG = _random.Random(0x2E9)


# --------------------------------------------------------------------------
# Interactive Schnorr sigma protocol
# --------------------------------------------------------------------------

@dataclass
class ProverSession:
    """Prover state across the three-move protocol for ``y = g^x``."""

    group: SchnorrGroup
    x: int
    _k: Optional[int] = None

    def commit(self, rng: Optional[_random.Random] = None) -> int:
        """Move 1: send commitment ``t = g^k``."""
        rng = rng or _DEFAULT_RNG
        self._k = self.group.random_scalar(rng)
        return self.group.exp(self._k)

    def respond(self, challenge: int) -> int:
        """Move 3: send response ``s = k + c*x mod q``."""
        if self._k is None:
            raise CryptoError("respond() called before commit()")
        s = (self._k + challenge * self.x) % self.group.q
        self._k = None  # never reuse a nonce
        return s


@dataclass
class VerifierSession:
    """Verifier state for the interactive proof of ``y = g^x``."""

    group: SchnorrGroup
    y: int
    _t: Optional[int] = None
    _c: Optional[int] = None

    def challenge(self, commitment: int,
                  rng: Optional[_random.Random] = None) -> int:
        """Move 2: record the commitment and send a random challenge."""
        if not self.group.contains(commitment):
            raise CryptoError("commitment outside the subgroup")
        rng = rng or _DEFAULT_RNG
        self._t = commitment
        self._c = rng.randrange(self.group.q)
        return self._c

    def check(self, response: int) -> bool:
        """Final check: ``g^s == t * y^c``."""
        if self._t is None or self._c is None:
            raise CryptoError("check() called before challenge()")
        lhs = self.group.exp(response)
        rhs = self.group.mul(self._t, self.group.power(self.y, self._c))
        return lhs == rhs


# --------------------------------------------------------------------------
# Non-interactive (Fiat–Shamir) proofs
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DlogProof:
    """NIZK proof of knowledge of ``x`` with ``y = g^x``: ``(t, s)``."""

    commitment: int
    response: int


def _fs_challenge(group: SchnorrGroup, y: int, t: int, context: bytes) -> int:
    width = (group.p.bit_length() + 7) // 8
    data = y.to_bytes(width, "big") + t.to_bytes(width, "big") + context
    return hash_to_int(data, group.q, domain=b"repro/zkp/fs")


def prove_dlog_nizk(group: SchnorrGroup, x: int, context: bytes = b"",
                    rng: Optional[_random.Random] = None) -> DlogProof:
    """Non-interactive proof of knowledge of ``x`` for ``y = g^x``.

    ``context`` binds the proof to a session/statement (anti-replay): a
    verifier checking with a different context will reject.
    """
    rng = rng or _DEFAULT_RNG
    k = group.random_scalar(rng)
    t = group.exp(k)
    c = _fs_challenge(group, group.exp(x), t, context)
    return DlogProof(commitment=t, response=(k + c * x) % group.q)


def verify_dlog_nizk(group: SchnorrGroup, y: int, proof: DlogProof,
                     context: bytes = b"") -> bool:
    """Verify a :func:`prove_dlog_nizk` proof against public ``y``."""
    if not group.contains(proof.commitment):
        return False
    c = _fs_challenge(group, y, proof.commitment, context)
    lhs = group.exp(proof.response)
    rhs = group.mul(proof.commitment, group.power(y, c))
    return lhs == rhs


@dataclass(frozen=True)
class EqualityProof:
    """Chaum–Pedersen proof that ``log_g(y1) == log_h(y2)``."""

    commitment_g: int
    commitment_h: int
    response: int


def prove_dlog_equality(group: SchnorrGroup, x: int, h: int,
                        context: bytes = b"",
                        rng: Optional[_random.Random] = None) -> EqualityProof:
    """Prove the same ``x`` underlies ``g^x`` and ``h^x`` (unlinkable creds)."""
    if not group.contains(h):
        raise CryptoError("second base outside the subgroup")
    rng = rng or _DEFAULT_RNG
    k = group.random_scalar(rng)
    t1 = group.exp(k)
    t2 = group.power(h, k)
    width = (group.p.bit_length() + 7) // 8
    data = b"".join(v.to_bytes(width, "big")
                    for v in (group.exp(x), group.power(h, x), t1, t2))
    c = hash_to_int(data + context, group.q, domain=b"repro/zkp/cp")
    return EqualityProof(commitment_g=t1, commitment_h=t2,
                         response=(k + c * x) % group.q)


def verify_dlog_equality(group: SchnorrGroup, y1: int, h: int, y2: int,
                         proof: EqualityProof, context: bytes = b"") -> bool:
    """Verify a Chaum–Pedersen equality proof."""
    if not (group.contains(proof.commitment_g)
            and group.contains(proof.commitment_h)):
        return False
    width = (group.p.bit_length() + 7) // 8
    data = b"".join(v.to_bytes(width, "big")
                    for v in (y1, y2, proof.commitment_g, proof.commitment_h))
    c = hash_to_int(data + context, group.q, domain=b"repro/zkp/cp")
    ok_g = (group.exp(proof.response)
            == group.mul(proof.commitment_g, group.power(y1, c)))
    ok_h = (group.power(h, proof.response)
            == group.mul(proof.commitment_h, group.power(y2, c)))
    return ok_g and ok_h
