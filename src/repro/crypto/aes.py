"""AES block cipher (FIPS 197) implemented from scratch.

Supports 128/192/256-bit keys.  The S-box and its inverse are derived at
import time from the finite-field definition rather than pasted as magic
tables, so the implementation is auditable end-to-end; test vectors from
FIPS 197 Appendix C pin the behaviour.

This is the raw block primitive; modes of operation and authenticated
encryption live in :mod:`repro.crypto.symmetric`.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import CryptoError, InvalidKeyError


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple:
    """Derive the AES S-box from inversion in GF(2^8) + affine transform."""
    # Build inverses via exponentiation tables on the generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        s = inv
        for shift in (1, 2, 3, 4):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = s ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D)

# Precomputed GF multiplication tables for MixColumns speed.
_MUL2 = tuple(_gf_mul(x, 2) for x in range(256))
_MUL3 = tuple(_gf_mul(x, 3) for x in range(256))
_MUL9 = tuple(_gf_mul(x, 9) for x in range(256))
_MUL11 = tuple(_gf_mul(x, 11) for x in range(256))
_MUL13 = tuple(_gf_mul(x, 13) for x in range(256))
_MUL14 = tuple(_gf_mul(x, 14) for x in range(256))


class AES:
    """The AES block cipher: 16-byte blocks, 16/24/32-byte keys."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise InvalidKeyError("AES keys must be 16, 24 or 32 bytes")
        self._nk = len(key) // 4
        self._rounds = {4: 10, 6: 12, 8: 14}[self._nk]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk, rounds = self._nk, self._rounds
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group into per-round 16-byte keys (column-major state order).
        return [sum(words[4 * r:4 * r + 4], []) for r in range(rounds + 1)]

    # State is a flat list of 16 bytes in column-major order, matching the
    # byte order of the input block.

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            out[4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            out[4 * c + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise CryptoError("AES blocks are exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise CryptoError("AES blocks are exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for rnd in range(self._rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
