"""RSA: key generation, OAEP-style encryption, hash-then-sign signatures.

RSA is the concrete public-key scheme behind several surveyed systems
(flyByNight's client-side crypto, PeerSoN's friend messaging — Section III-C
of the paper) and the base of Chaum blind signatures used for secure social
search (Section V-A, Hummingbird).

Padding: a simplified OAEP (mask-generation with HKDF, fixed 32-byte seed)
for encryption and deterministic salted hashing for signatures.  CRT is used
to speed up private-key operations.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import digest, hkdf
from repro.crypto.numbertheory import (bytes_to_int, generate_prime,
                                       int_to_bytes, modinv)
from repro.exceptions import (CryptoError, DecryptionError, InvalidKeyError,
                              SignatureError)

_DEFAULT_RNG = _random.Random(0x25A)

_OAEP_SEED_LEN = 16
_OAEP_HASH_LEN = 16


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        """Canonical serialization (for fingerprints and certificates)."""
        return int_to_bytes(self.n) + b"|" + int_to_bytes(self.e)


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RSAPublicKey:
        """The matching public key."""
        return RSAPublicKey(self.n, self.e)

    def _crt_power(self, c: int) -> int:
        """``c^d mod n`` via the Chinese Remainder Theorem (~4x faster)."""
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        m1 = pow(c % self.p, dp, self.p)
        m2 = pow(c % self.q, dq, self.q)
        h = (m1 - m2) * modinv(self.q, self.p) % self.p
        return m2 + h * self.q


def generate_keypair(bits: int = 1024, e: int = 65537,
                     rng: Optional[_random.Random] = None) -> RSAPrivateKey:
    """Generate an RSA keypair with a ``bits``-bit modulus."""
    if bits < 128:
        raise InvalidKeyError("modulus too small even for toy use")
    rng = rng or _DEFAULT_RNG
    while True:
        p = generate_prime(bits // 2, rng=rng)
        q = generate_prime(bits - bits // 2, rng=rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = modinv(e, phi)
        if n.bit_length() >= bits:
            return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)


def _mgf(seed: bytes, length: int) -> bytes:
    """Mask generation function (HKDF-based MGF1 stand-in)."""
    return hkdf(seed, length, info=b"repro/rsa/mgf")


def max_plaintext_length(pub: RSAPublicKey) -> int:
    """Longest message OAEP-encryptable under ``pub``."""
    return pub.byte_length - _OAEP_SEED_LEN - _OAEP_HASH_LEN - 2


def encrypt(pub: RSAPublicKey, message: bytes,
            rng: Optional[_random.Random] = None) -> bytes:
    """OAEP-style RSA encryption of a short message.

    Layout of the encoded block (before the RSA power):
    ``00 || masked_seed(32) || masked_db`` where
    ``db = H(label) || 00... || 01 || message``.
    """
    rng = rng or _DEFAULT_RNG
    k = pub.byte_length
    if len(message) > max_plaintext_length(pub):
        raise CryptoError(
            f"message too long for modulus ({len(message)} bytes)")
    lhash = digest(b"repro/rsa/label")[:_OAEP_HASH_LEN]
    # db spans k - 1 - seed_len bytes: lhash || zero pad || 0x01 || message.
    pad = b"\x00" * (k - 1 - _OAEP_SEED_LEN - _OAEP_HASH_LEN
                     - 1 - len(message))
    db = lhash + pad + b"\x01" + message
    seed = bytes(rng.getrandbits(8) for _ in range(_OAEP_SEED_LEN))
    masked_db = bytes(a ^ b for a, b in zip(db, _mgf(seed, len(db))))
    masked_seed = bytes(a ^ b for a, b in
                        zip(seed, _mgf(masked_db, _OAEP_SEED_LEN)))
    encoded = b"\x00" + masked_seed + masked_db
    c = pow(bytes_to_int(encoded), pub.e, pub.n)
    return int_to_bytes(c, k)


def decrypt(priv: RSAPrivateKey, ciphertext: bytes) -> bytes:
    """Invert :func:`encrypt`; raises :class:`DecryptionError` on tamper."""
    k = priv.public_key.byte_length
    if len(ciphertext) != k:
        raise DecryptionError("ciphertext has wrong length")
    m = priv._crt_power(bytes_to_int(ciphertext))
    encoded = int_to_bytes(m, k)
    if encoded[0] != 0:
        raise DecryptionError("OAEP decoding failed")
    masked_seed = encoded[1:1 + _OAEP_SEED_LEN]
    masked_db = encoded[1 + _OAEP_SEED_LEN:]
    seed = bytes(a ^ b for a, b in
                 zip(masked_seed, _mgf(masked_db, _OAEP_SEED_LEN)))
    db = bytes(a ^ b for a, b in zip(masked_db, _mgf(seed, len(masked_db))))
    if db[:_OAEP_HASH_LEN] != digest(b"repro/rsa/label")[:_OAEP_HASH_LEN]:
        raise DecryptionError("OAEP label mismatch")
    rest = db[_OAEP_HASH_LEN:]
    sep = rest.find(b"\x01")
    if sep < 0 or any(rest[:sep]):
        raise DecryptionError("OAEP padding structure invalid")
    return rest[sep + 1:]


def _encode_digest_for_signing(message: bytes, n: int) -> int:
    """Full-domain-hash encoding of a message for signing mod ``n``."""
    need = (n.bit_length() - 1 + 7) // 8
    out = b""
    counter = 0
    while len(out) < need:
        out += digest(b"repro/rsa/fdh" + counter.to_bytes(4, "big") + message)
        counter += 1
    return bytes_to_int(out[:need]) % n


def sign(priv: RSAPrivateKey, message: bytes) -> bytes:
    """Full-domain-hash RSA signature."""
    h = _encode_digest_for_signing(message, priv.n)
    return int_to_bytes(priv._crt_power(h), priv.public_key.byte_length)


def verify(pub: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Check an RSA signature; never raises for a merely-invalid signature."""
    if len(signature) != pub.byte_length:
        return False
    s = bytes_to_int(signature)
    if s >= pub.n:
        return False
    return pow(s, pub.e, pub.n) == _encode_digest_for_signing(message, pub.n)


def verify_or_raise(pub: RSAPublicKey, message: bytes,
                    signature: bytes) -> None:
    """Like :func:`verify` but raises :class:`SignatureError` on failure."""
    if not verify(pub, message, signature):
        raise SignatureError("RSA signature verification failed")
