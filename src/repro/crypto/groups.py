"""Prime-order discrete-log groups over safe primes.

A :class:`SchnorrGroup` is the order-``q`` subgroup of ``Z_p*`` for a safe
prime ``p = 2q + 1``.  It backs Diffie–Hellman, ElGamal, Schnorr signatures,
the 2HashDH OPRF, and the zero-knowledge proofs — everything in the survey
that needs plain discrete logs rather than pairings.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import params as _params
from repro.crypto.hashing import hash_to_int
from repro.exceptions import CryptoError

_DEFAULT_RNG = _random.Random(0xD106)


@dataclass(frozen=True)
class SchnorrGroup:
    """The prime-order-``q`` subgroup of ``Z_p*`` with ``p = 2q + 1``.

    The subgroup is exactly the set of quadratic residues mod ``p``; squaring
    any element of ``Z_p*`` lands in it, which is how :meth:`hash_to_element`
    and :meth:`element_from_int` work.
    """

    p: int
    q: int = field(init=False)
    g: int = field(init=False)

    def __post_init__(self) -> None:
        if self.p % 2 == 0 or self.p < 7:
            raise CryptoError("p must be an odd prime >= 7")
        object.__setattr__(self, "q", (self.p - 1) // 2)
        # 4 = 2^2 is a quadratic residue, hence of order q (it is not 1).
        object.__setattr__(self, "g", 4 % self.p)

    def random_scalar(self, rng: Optional[_random.Random] = None) -> int:
        """Uniform exponent in ``[1, q)``."""
        rng = rng or _DEFAULT_RNG
        return rng.randrange(1, self.q)

    def power(self, base: int, exponent: int) -> int:
        """``base^exponent mod p`` (exponent reduced mod q for subgroup bases)."""
        return pow(base, exponent % self.q, self.p)

    def exp(self, exponent: int) -> int:
        """``g^exponent mod p``."""
        return self.power(self.g, exponent)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return a * b % self.p

    def inverse(self, a: int) -> int:
        """Group inverse via Fermat."""
        return pow(a, self.p - 2, self.p)

    def element_from_int(self, value: int) -> int:
        """Map an arbitrary integer into the subgroup by squaring."""
        v = value % self.p
        if v == 0:
            v = 1
        return v * v % self.p

    def hash_to_element(self, data: bytes, domain: bytes = b"") -> int:
        """Hash bytes onto a subgroup element (random-oracle style)."""
        raw = hash_to_int(data, self.p - 1, domain=b"repro/grp" + domain) + 1
        return self.element_from_int(raw)

    def hash_to_scalar(self, data: bytes, domain: bytes = b"") -> int:
        """Hash bytes to a nonzero exponent mod ``q``."""
        return hash_to_int(data, self.q - 1, domain=b"repro/grps" + domain) + 1

    def contains(self, value: int) -> bool:
        """Membership test for the order-q subgroup."""
        return 0 < value < self.p and pow(value, self.q, self.p) == 1


_GROUP_CACHE: dict = {}


def schnorr_group(bits: int = 256) -> SchnorrGroup:
    """The shared group over the precomputed safe prime of ``bits`` bits."""
    if bits not in _GROUP_CACHE:
        _GROUP_CACHE[bits] = SchnorrGroup(p=_params.safe_prime(bits))
    return _GROUP_CACHE[bits]


def group_for_level(level: str = "TOY") -> SchnorrGroup:
    """Group sized for a named security level (TOY/TEST/STD)."""
    try:
        bits = _params.LEVEL_BITS[level.upper()]
    except KeyError:
        raise CryptoError(f"unknown level {level!r}")
    return schnorr_group(bits)
