"""From-scratch cryptographic substrate for the DOSN reproduction.

Every primitive the surveyed systems rely on, implemented on plain Python
integers/bytes (plus :mod:`hashlib` on hash hot paths, proven equivalent to
the from-scratch :mod:`repro.crypto.sha256` by the test suite):

========================  ====================================================
Module                    Primitive
========================  ====================================================
:mod:`~.numbertheory`     primes, modular arithmetic, CRT, square roots
:mod:`~.sha256`           SHA-256 from scratch
:mod:`~.hashing`          HMAC, HKDF, hash-to-field, chain hashing
:mod:`~.merkle`           Merkle trees + inclusion proofs
:mod:`~.aes`              AES block cipher (FIPS 197)
:mod:`~.symmetric`        CBC/CTR modes, PKCS#7, encrypt-then-MAC AEAD
:mod:`~.groups`           safe-prime Schnorr groups
:mod:`~.rsa`              RSA-OAEP encryption + FDH signatures
:mod:`~.elgamal`          ElGamal encryption (homomorphic)
:mod:`~.dh`               Diffie–Hellman key agreement
:mod:`~.signatures`       Schnorr + DSA signatures
:mod:`~.blind`            Chaum blind RSA signatures
:mod:`~.prf`              HMAC-PRF, 2HashDH oblivious PRF
:mod:`~.zkp`              Schnorr ZKP (interactive + NIZK), Chaum–Pedersen
:mod:`~.pairing`          Type-1 Tate pairing on a supersingular curve
:mod:`~.abe`              CP-ABE (Bethencourt–Sahai–Waters)
:mod:`~.ibe`              Boneh–Franklin IBE
:mod:`~.ibbe`             Delerablée IBBE (constant-size ciphertexts)
:mod:`~.broadcast`        naive BE + NNL complete-subtree revocation
========================  ====================================================

**This code exists to reproduce a research paper's comparisons.  Parameter
sizes are deliberately small; do not use it to protect real data.**
"""

from repro.crypto import params  # noqa: F401  (re-exported for convenience)
