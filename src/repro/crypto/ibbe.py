"""Delerablée Identity-Based Broadcast Encryption (constant-size ciphertext).

Section III-E of the paper: "In IBBE schemes, audiences of a broadcast group
can use any identifier string as their public keys ... IBBE is more flexible
than ABE, since it addresses individual recipients instead of the whole
group.  Removing a recipient from the list would then have no extra cost."

The scheme (ASIACRYPT 2007) instantiated on our Type-1 pairing:

* setup(m):  msk ``(g, gamma)``; pk ``(w = g^gamma, v = e(g, h),
  h, h^gamma, ..., h^{gamma^m})`` for max broadcast size ``m``
* extract:   ``sk_ID = g^{1/(gamma + H(ID))}``
* encrypt(S): random ``k``; ``C1 = w^{-k}``,
  ``C2 = h^{k * prod_{ID in S}(gamma + H(ID))}``, session key ``K = v^k``
* decrypt:   ``K = (e(C1, h^{p_i(gamma)}) * e(sk_i, C2))^{1/prod_{j!=i} H(ID_j)}``

``C2`` and ``h^{p_i(gamma)}`` are computed from the published powers of
``gamma`` via polynomial expansion over ``Z_q`` — no secret is needed to
encrypt, and the ciphertext size is independent of ``|S|`` (two group
elements), which experiment E3 contrasts with the per-member ciphertexts of
the public-key ACL.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashing import hkdf
from repro.crypto.numbertheory import modinv
from repro.crypto.pairing import G1Element, GTElement, PairingGroup, pairing_group
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import CryptoError, DecryptionError

_DEFAULT_RNG = _random.Random(0x1BBE)


def _expand_roots(roots: Sequence[int], q: int) -> List[int]:
    """Coefficients (low-to-high) of ``prod_i (X + roots[i])`` over Z_q."""
    coeffs = [1]
    for root in roots:
        nxt = [0] * (len(coeffs) + 1)
        for degree, coeff in enumerate(coeffs):
            nxt[degree] = (nxt[degree] + coeff * root) % q
            nxt[degree + 1] = (nxt[degree + 1] + coeff) % q
        coeffs = nxt
    return coeffs


@dataclass(frozen=True)
class IBBEPublicKey:
    """Public parameters; ``h_powers[i] == h^{gamma^i}``."""

    group: PairingGroup
    max_recipients: int
    w: G1Element
    v: GTElement
    h_powers: Tuple[G1Element, ...]


@dataclass(frozen=True)
class IBBEUserKey:
    """A recipient's extracted key ``g^{1/(gamma + H(ID))}``."""

    identity: str
    sk: G1Element


@dataclass(frozen=True)
class IBBEHeader:
    """Constant-size broadcast header ``(C1, C2)`` plus the recipient list.

    The recipient list is metadata, not a secret: the scheme hides the
    *message*, not the audience (audience-hiding would need anonymous BE).
    """

    recipients: Tuple[str, ...]
    c1: G1Element
    c2: G1Element


class IBBE:
    """An IBBE context bound to one pairing parameter set."""

    def __init__(self, level: str = "TOY") -> None:
        self.group = pairing_group(level)

    def _hash_identity(self, identity: str) -> int:
        return self.group.hash_to_scalar(identity.encode(),
                                         domain=b"/ibbe/id")

    def setup(self, max_recipients: int,
              rng: Optional[_random.Random] = None
              ) -> Tuple[IBBEPublicKey, "IBBEMasterKey"]:
        """Generate system parameters for broadcasts of up to ``max_recipients``."""
        if max_recipients < 1:
            raise CryptoError("max_recipients must be positive")
        rng = rng or _DEFAULT_RNG
        g = self.group.generator
        h = self.group.hash_to_g1(b"repro/ibbe/h")
        gamma = self.group.random_scalar(rng)
        powers = []
        acc = 1
        for _ in range(max_recipients + 1):
            powers.append(h ** acc)
            acc = acc * gamma % self.group.q
        pk = IBBEPublicKey(group=self.group, max_recipients=max_recipients,
                           w=g ** gamma, v=self.group.pair(g, h),
                           h_powers=tuple(powers))
        return pk, IBBEMasterKey(scheme=self, g=g, gamma=gamma)

    def _poly_in_h(self, pk: IBBEPublicKey, coeffs: Sequence[int]) -> G1Element:
        """``h^{f(gamma)}`` for polynomial ``f`` given by ``coeffs``."""
        if len(coeffs) > len(pk.h_powers):
            raise CryptoError("polynomial degree exceeds setup bound")
        acc = self.group.identity_g1()
        for power, coeff in zip(pk.h_powers, coeffs):
            if coeff:
                acc = acc * (power ** coeff)
        return acc

    def encrypt_key(self, pk: IBBEPublicKey, recipients: Sequence[str],
                    rng: Optional[_random.Random] = None
                    ) -> Tuple[IBBEHeader, GTElement]:
        """Produce a broadcast header and the shared session key ``K = v^k``."""
        if not recipients:
            raise CryptoError("broadcast needs at least one recipient")
        if len(set(recipients)) != len(recipients):
            raise CryptoError("duplicate recipients in broadcast set")
        if len(recipients) > pk.max_recipients:
            raise CryptoError(
                f"{len(recipients)} recipients exceeds setup bound "
                f"{pk.max_recipients}")
        rng = rng or _DEFAULT_RNG
        q = self.group.q
        k = self.group.random_scalar(rng)
        hashes = [self._hash_identity(r) for r in recipients]
        coeffs = _expand_roots(hashes, q)
        c1 = (pk.w ** k).inverse()
        c2 = self._poly_in_h(pk, [c * k % q for c in coeffs])
        return (IBBEHeader(recipients=tuple(recipients), c1=c1, c2=c2),
                pk.v ** k)

    def decrypt_key(self, pk: IBBEPublicKey, header: IBBEHeader,
                    user_key: IBBEUserKey) -> GTElement:
        """Recover the session key as recipient ``user_key.identity``."""
        if user_key.identity not in header.recipients:
            raise DecryptionError(
                f"{user_key.identity!r} is not in the broadcast set")
        q = self.group.q
        others = [self._hash_identity(r) for r in header.recipients
                  if r != user_key.identity]
        delta = 1
        for x in others:
            delta = delta * x % q
        # p_i(gamma) = (prod_{j != i}(gamma + x_j) - delta) / gamma:
        # subtracting the constant term and shifting down one degree.
        coeffs = _expand_roots(others, q)
        shifted = coeffs[1:] if len(coeffs) > 1 else [0]
        h_pi = self._poly_in_h(pk, shifted)
        paired = (self.group.pair(header.c1, h_pi)
                  * self.group.pair(user_key.sk, header.c2))
        return paired ** modinv(delta, q)

    # -- byte-level hybrid API ---------------------------------------------

    def encrypt_bytes(self, pk: IBBEPublicKey, recipients: Sequence[str],
                      message: bytes,
                      rng: Optional[_random.Random] = None
                      ) -> Tuple[IBBEHeader, bytes]:
        """Broadcast-encrypt bytes: IBBE header + AEAD payload."""
        rng = rng or _DEFAULT_RNG
        header, session = self.encrypt_key(pk, recipients, rng)
        key = hkdf(session.to_bytes(), 32, info=b"repro/ibbe/kem")
        return header, AuthenticatedCipher(key).encrypt(message, rng=rng)

    def decrypt_bytes(self, pk: IBBEPublicKey, header: IBBEHeader,
                      blob: bytes, user_key: IBBEUserKey) -> bytes:
        """Invert :meth:`encrypt_bytes` as one of the listed recipients."""
        session = self.decrypt_key(pk, header, user_key)
        key = hkdf(session.to_bytes(), 32, info=b"repro/ibbe/kem")
        return AuthenticatedCipher(key).decrypt(blob)


@dataclass(frozen=True)
class IBBEMasterKey:
    """The PKG side: extracts user keys with the master secret ``gamma``."""

    scheme: IBBE
    g: G1Element
    gamma: int

    def extract(self, identity: str) -> IBBEUserKey:
        """Issue ``sk_ID = g^{1/(gamma + H(ID))}``."""
        q = self.scheme.group.q
        denom = (self.gamma + self.scheme._hash_identity(identity)) % q
        if denom == 0:  # pragma: no cover - probability ~2^-64
            raise CryptoError("degenerate identity hash; re-run setup")
        return IBBEUserKey(identity=identity,
                           sk=self.g ** modinv(denom, q))
