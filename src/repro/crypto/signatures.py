"""Digital signatures: Schnorr and DSA, with a uniform keypair API.

Digital signatures are the universal tool of Section IV ("commonly used
methods to protect data integrity are based on digital signatures"): they
provide integrity of the data owner and of the data content, and they anchor
the hash-chain and history-tree constructions.

Two schemes are provided over the same :class:`~repro.crypto.groups.SchnorrGroup`:

* :class:`SchnorrSigner` — Schnorr signatures (Fiat–Shamir transformed
  identification), the scheme also reused by the ZKP module;
* :class:`DSASigner` — classic DSA over the safe-prime group.

RSA signatures live in :mod:`repro.crypto.rsa`; all three satisfy the same
``sign(bytes) -> signature`` / ``verify(...)`` shape used by the integrity
layer.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hash_to_int
from repro.crypto.numbertheory import modinv
from repro.exceptions import SignatureError
from repro.obs import hooks

_DEFAULT_RNG = _random.Random(0x516)

#: Schnorr signature: (challenge e, response s).
SchnorrSignature = Tuple[int, int]
#: DSA signature: (r, s).
DSASignature = Tuple[int, int]


def _challenge(group: SchnorrGroup, commitment: int, public: int,
               message: bytes) -> int:
    width = (group.p.bit_length() + 7) // 8
    data = (commitment.to_bytes(width, "big")
            + public.to_bytes(width, "big") + message)
    return hash_to_int(data, group.q, domain=b"repro/schnorr")


@dataclass(frozen=True)
class SchnorrPublicKey:
    """Verification key ``y = g^x``."""

    group: SchnorrGroup
    y: int

    def verify(self, message: bytes, signature: SchnorrSignature) -> bool:
        """Check ``e == H(g^s * y^-e, y, m)``."""
        e, s = signature
        if not 0 <= e < self.group.q or not 0 <= s < self.group.q:
            return False
        with hooks.crypto_op("schnorr.verify", len(message)):
            commitment = self.group.mul(
                self.group.exp(s),
                self.group.inverse(self.group.power(self.y, e)))
            return _challenge(self.group, commitment, self.y, message) == e

    def verify_or_raise(self, message: bytes,
                        signature: SchnorrSignature) -> None:
        """Raise :class:`SignatureError` on a bad signature."""
        if not self.verify(message, signature):
            raise SignatureError("Schnorr signature verification failed")

    def to_bytes(self) -> bytes:
        """Canonical encoding for identity fingerprints."""
        width = (self.group.p.bit_length() + 7) // 8
        return self.y.to_bytes(width, "big")


@dataclass(frozen=True)
class SchnorrSigner:
    """Signing key ``x`` with its cached public half."""

    group: SchnorrGroup
    x: int

    @property
    def public_key(self) -> SchnorrPublicKey:
        """Derive the verification key."""
        return SchnorrPublicKey(self.group, self.group.exp(self.x))

    def sign(self, message: bytes,
             rng: Optional[_random.Random] = None) -> SchnorrSignature:
        """Produce ``(e, s)`` with ``s = k + e*x`` for random nonce ``k``."""
        rng = rng or _DEFAULT_RNG
        with hooks.crypto_op("schnorr.sign", len(message)):
            k = self.group.random_scalar(rng)
            commitment = self.group.exp(k)
            e = _challenge(self.group, commitment,
                           self.group.exp(self.x), message)
            s = (k + e * self.x) % self.group.q
            return (e, s)


def generate_schnorr_keypair(level: str = "TOY",
                             rng: Optional[_random.Random] = None,
                             group: Optional[SchnorrGroup] = None
                             ) -> SchnorrSigner:
    """Fresh Schnorr signing key at the given parameter level."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    return SchnorrSigner(group=group, x=group.random_scalar(rng))


@dataclass(frozen=True)
class DSAPublicKey:
    """DSA verification key."""

    group: SchnorrGroup
    y: int

    def verify(self, message: bytes, signature: DSASignature) -> bool:
        """Standard DSA verification over the safe-prime subgroup."""
        r, s = signature
        group = self.group
        if not (0 < r < group.q and 0 < s < group.q):
            return False
        w = modinv(s, group.q)
        h = hash_to_int(message, group.q, domain=b"repro/dsa")
        u1 = h * w % group.q
        u2 = r * w % group.q
        v = group.mul(group.exp(u1), group.power(self.y, u2)) % group.q
        return v == r


@dataclass(frozen=True)
class DSASigner:
    """DSA signing key."""

    group: SchnorrGroup
    x: int

    @property
    def public_key(self) -> DSAPublicKey:
        """Derive the verification key."""
        return DSAPublicKey(self.group, self.group.exp(self.x))

    def sign(self, message: bytes,
             rng: Optional[_random.Random] = None) -> DSASignature:
        """Produce a DSA ``(r, s)`` pair (nonce resampled on degenerate 0s)."""
        rng = rng or _DEFAULT_RNG
        group = self.group
        h = hash_to_int(message, group.q, domain=b"repro/dsa")
        while True:
            k = group.random_scalar(rng)
            r = group.exp(k) % group.q
            if r == 0:
                continue
            s = modinv(k, group.q) * (h + self.x * r) % group.q
            if s != 0:
                return (r, s)


def generate_dsa_keypair(level: str = "TOY",
                         rng: Optional[_random.Random] = None,
                         group: Optional[SchnorrGroup] = None) -> DSASigner:
    """Fresh DSA signing key at the given parameter level."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    return DSASigner(group=group, x=group.random_scalar(rng))
