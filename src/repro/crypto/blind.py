"""Chaum blind RSA signatures.

Section V-A of the paper: "Blind signatures can help to provide the privacy
of content ... a signature of a message's keyword is used as a key to
encrypt the message" (the Hummingbird subscribe protocol).  The subscriber
obtains the publisher's signature on a hashtag *without revealing the
hashtag*; that signature then doubles as the decryption-key seed for every
message carrying the tag (:mod:`repro.search.blind_subscribe`).

Protocol (requester R, signer S with RSA key ``(n, e, d)``):

1. R blinds:   ``m' = H(m) * r^e  (mod n)`` for random ``r``.
2. S signs:    ``s' = (m')^d      (mod n)`` — learns nothing about ``m``.
3. R unblinds: ``s  = s' * r^-1   (mod n)``; now ``s = H(m)^d``.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from math import gcd
from typing import Optional

from repro.crypto import rsa
from repro.crypto.numbertheory import bytes_to_int, int_to_bytes, modinv
from repro.exceptions import SignatureError

_DEFAULT_RNG = _random.Random(0xB11D)


def _message_representative(message: bytes, n: int) -> int:
    """Full-domain hash of the message into ``Z_n``."""
    return rsa._encode_digest_for_signing(message, n)


@dataclass
class BlindingContext:
    """Requester-side state: the blinded message to send, and the unblinder.

    Keep this object private; ``blinded`` is the only value that goes on the
    wire to the signer.
    """

    public_key: rsa.RSAPublicKey
    message: bytes
    blinded: int
    _r_inv: int

    def unblind(self, blind_signature: int) -> bytes:
        """Strip the blinding factor and verify the resulting signature."""
        s = blind_signature * self._r_inv % self.public_key.n
        signature = int_to_bytes(s, self.public_key.byte_length)
        if not verify(self.public_key, self.message, signature):
            raise SignatureError("unblinded signature does not verify")
        return signature


def blind(pub: rsa.RSAPublicKey, message: bytes,
          rng: Optional[_random.Random] = None) -> BlindingContext:
    """Requester step 1: produce the blinded representative."""
    rng = rng or _DEFAULT_RNG
    m = _message_representative(message, pub.n)
    while True:
        r = rng.randrange(2, pub.n - 1)
        if gcd(r, pub.n) == 1:
            break
    blinded = m * pow(r, pub.e, pub.n) % pub.n
    return BlindingContext(public_key=pub, message=message, blinded=blinded,
                           _r_inv=modinv(r, pub.n))


def sign_blinded(priv: rsa.RSAPrivateKey, blinded: int) -> int:
    """Signer step 2: raw RSA power on the blinded value.

    The signer sees only a uniformly random element of ``Z_n*`` — this is
    exactly the information-theoretic blindness property the search layer
    relies on.
    """
    if not 0 <= blinded < priv.n:
        raise SignatureError("blinded value out of range")
    return priv._crt_power(blinded)


def verify(pub: rsa.RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Check that ``signature`` is a valid (unblinded) signature on ``message``."""
    if len(signature) != pub.byte_length:
        return False
    s = bytes_to_int(signature)
    if s >= pub.n:
        return False
    return pow(s, pub.e, pub.n) == _message_representative(message, pub.n)


def sign_directly(priv: rsa.RSAPrivateKey, message: bytes) -> bytes:
    """Unblinded signature with the same representative (for the publisher).

    The publisher uses this to derive the per-hashtag key itself — it must
    equal what any subscriber obtains through the blind protocol, which is
    what makes the scheme a key-agreement in disguise.
    """
    m = _message_representative(message, priv.n)
    return int_to_bytes(priv._crt_power(m), priv.public_key.byte_length)
