"""Merkle hash trees with inclusion proofs.

Merkle trees are the building block behind the authenticated data structures
in Section IV of the paper (object history trees, persistent authenticated
dictionaries): a single signed root commits to an arbitrary set of items and
membership is provable in ``O(log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import digest
from repro.exceptions import IntegrityError

#: Domain-separation prefixes so a leaf hash can never be confused with an
#: interior hash (the classic second-preimage attack on naive Merkle trees).
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    """Hash of a leaf value."""
    return digest(_LEAF_PREFIX + data)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash of an interior node from its two child hashes."""
    return digest(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index and sibling hashes bottom-up.

    ``siblings`` holds ``(hash, is_left)`` pairs where ``is_left`` says the
    sibling sits to the *left* of the path node at that level.
    """

    index: int
    leaf_count: int
    siblings: Tuple[Tuple[bytes, bool], ...]

    def root(self, data: bytes) -> bytes:
        """Recompute the root committed to by this proof for leaf ``data``."""
        acc = leaf_hash(data)
        for sibling, is_left in self.siblings:
            acc = node_hash(sibling, acc) if is_left else node_hash(acc, sibling)
        return acc


class MerkleTree:
    """An append-friendly Merkle tree over a list of byte-string leaves.

    The tree is recomputed lazily from the leaf list; with the workload sizes
    used in the experiments (up to ~10k timeline entries) this keeps the code
    simple without measurable cost.
    """

    def __init__(self, leaves: Sequence[bytes] = ()) -> None:
        self._leaves: List[bytes] = list(leaves)
        self._levels: List[List[bytes]] = []
        self._dirty = True

    def __len__(self) -> int:
        return len(self._leaves)

    def append(self, data: bytes) -> int:
        """Append a leaf; returns its index."""
        self._leaves.append(data)
        self._dirty = True
        return len(self._leaves) - 1

    def extend(self, items: Sequence[bytes]) -> None:
        """Append several leaves."""
        self._leaves.extend(items)
        self._dirty = True

    def _build(self) -> None:
        if not self._dirty:
            return
        level = [leaf_hash(leaf) for leaf in self._leaves]
        self._levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(node_hash(level[i], level[i + 1]))
                else:
                    # Odd node is promoted unchanged (Bitcoin-style
                    # duplication would allow malleability).
                    nxt.append(level[i])
            level = nxt
            self._levels.append(level)
        self._dirty = False

    def root(self) -> bytes:
        """The root hash; the empty tree has a fixed sentinel root."""
        if not self._leaves:
            return digest(b"repro/merkle/empty")
        self._build()
        return self._levels[-1][0]

    def prove(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IntegrityError(f"no leaf at index {index}")
        self._build()
        siblings: List[Tuple[bytes, bool]] = []
        pos = index
        for level in self._levels[:-1]:
            sibling_pos = pos ^ 1
            if sibling_pos < len(level):
                siblings.append((level[sibling_pos], sibling_pos < pos))
            pos //= 2
        return MerkleProof(index=index, leaf_count=len(self._leaves),
                           siblings=tuple(siblings))

    def verify(self, data: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Check ``data`` against ``proof`` and an expected ``root``."""
        return proof.root(data) == root


def verify_inclusion(data: bytes, proof: MerkleProof, root: bytes) -> bool:
    """Standalone proof check (no tree instance needed)."""
    return proof.root(data) == root
