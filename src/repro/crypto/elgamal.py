"""ElGamal public-key encryption over a Schnorr group.

This is the textbook asymmetric scheme of Section III-C, used by the
public-key access-control manager (:mod:`repro.acl.publickey_acl`): content
keys are ElGamal-encrypted under the public key of every group member.

The scheme is multiplicatively homomorphic — ``multiply_ciphertexts`` is
exposed because the NOYB-style information-substitution scheme uses it to
re-randomize dictionary indices without decrypting.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import DecryptionError, InvalidKeyError

_DEFAULT_RNG = _random.Random(0xE16A)


@dataclass(frozen=True)
class ElGamalPublicKey:
    """``h = g^x`` plus the group it lives in."""

    group: SchnorrGroup
    h: int

    def to_bytes(self) -> bytes:
        """Canonical serialization for fingerprinting."""
        width = (self.group.p.bit_length() + 7) // 8
        return self.h.to_bytes(width, "big")


@dataclass(frozen=True)
class ElGamalPrivateKey:
    """The discrete log ``x`` of the public key."""

    group: SchnorrGroup
    x: int

    @property
    def public_key(self) -> ElGamalPublicKey:
        """Derive the matching public key."""
        return ElGamalPublicKey(self.group, self.group.exp(self.x))


#: An ElGamal ciphertext ``(c1, c2) = (g^r, m * h^r)``.
Ciphertext = Tuple[int, int]


def generate_keypair(level: str = "TOY",
                     rng: Optional[_random.Random] = None,
                     group: Optional[SchnorrGroup] = None) -> ElGamalPrivateKey:
    """Fresh ElGamal keypair in the group for ``level`` (or an explicit group)."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    return ElGamalPrivateKey(group=group, x=group.random_scalar(rng))


def encrypt_element(pub: ElGamalPublicKey, message: int,
                    rng: Optional[_random.Random] = None) -> Ciphertext:
    """Encrypt a group element: ``(g^r, m * h^r)``."""
    if not pub.group.contains(message):
        raise InvalidKeyError("message must be a subgroup element; "
                              "use encrypt_bytes for arbitrary data")
    rng = rng or _DEFAULT_RNG
    r = pub.group.random_scalar(rng)
    return (pub.group.exp(r),
            pub.group.mul(message, pub.group.power(pub.h, r)))


def decrypt_element(priv: ElGamalPrivateKey, ciphertext: Ciphertext) -> int:
    """Invert :func:`encrypt_element`."""
    c1, c2 = ciphertext
    group = priv.group
    if not (group.contains(c1) and group.contains(c2)):
        raise DecryptionError("ciphertext components outside the subgroup")
    shared = group.power(c1, priv.x)
    return group.mul(c2, group.inverse(shared))


def multiply_ciphertexts(group: SchnorrGroup, a: Ciphertext,
                         b: Ciphertext) -> Ciphertext:
    """Homomorphic multiply: decrypts to the product of the two plaintexts."""
    return (group.mul(a[0], b[0]), group.mul(a[1], b[1]))


def rerandomize(pub: ElGamalPublicKey, ct: Ciphertext,
                rng: Optional[_random.Random] = None) -> Ciphertext:
    """Fresh randomness, same plaintext (multiply by an encryption of 1)."""
    return multiply_ciphertexts(pub.group, ct, encrypt_element(pub, 1, rng))


def encrypt_bytes(pub: ElGamalPublicKey, message: bytes,
                  rng: Optional[_random.Random] = None) -> bytes:
    """Hybrid KEM/DEM: ElGamal-wrap a random element, AEAD the payload.

    Output: ``len(c1) || c1 || c2 || aead_blob`` with fixed-width integers.
    """
    rng = rng or _DEFAULT_RNG
    group = pub.group
    r = group.random_scalar(rng)
    kem_element = group.element_from_int(rng.randrange(1, group.p))
    c1, c2 = (group.exp(r),
              group.mul(kem_element, group.power(pub.h, r)))
    width = (group.p.bit_length() + 7) // 8
    key = hkdf(kem_element.to_bytes(width, "big"), 32,
               info=b"repro/elgamal/kem")
    blob = AuthenticatedCipher(key).encrypt(message, rng=rng)
    return (width.to_bytes(2, "big") + c1.to_bytes(width, "big")
            + c2.to_bytes(width, "big") + blob)


def decrypt_bytes(priv: ElGamalPrivateKey, ciphertext: bytes) -> bytes:
    """Invert :func:`encrypt_bytes`."""
    if len(ciphertext) < 2:
        raise DecryptionError("truncated ciphertext")
    width = int.from_bytes(ciphertext[:2], "big")
    if len(ciphertext) < 2 + 2 * width:
        raise DecryptionError("truncated ciphertext")
    c1 = int.from_bytes(ciphertext[2:2 + width], "big")
    c2 = int.from_bytes(ciphertext[2 + width:2 + 2 * width], "big")
    blob = ciphertext[2 + 2 * width:]
    kem_element = decrypt_element(priv, (c1, c2))
    key = hkdf(kem_element.to_bytes(width, "big"), 32,
               info=b"repro/elgamal/kem")
    return AuthenticatedCipher(key).decrypt(blob)
