"""Diffie–Hellman key agreement over a Schnorr group.

Used wherever two DOSN peers need a shared symmetric key without a central
provider: friend-to-friend channels in the overlay, and the out-of-band key
establishment that the survey notes (Section IV-A) as the bootstrap for
signature verification keys.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hkdf
from repro.exceptions import CryptoError

_DEFAULT_RNG = _random.Random(0xD47)


@dataclass(frozen=True)
class DHKeyPair:
    """An ephemeral or static DH keypair ``(x, g^x)``."""

    group: SchnorrGroup
    private: int
    public: int


def generate_keypair(level: str = "TOY",
                     rng: Optional[_random.Random] = None,
                     group: Optional[SchnorrGroup] = None) -> DHKeyPair:
    """Fresh DH keypair."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    x = group.random_scalar(rng)
    return DHKeyPair(group=group, private=x, public=group.exp(x))


def shared_secret(own: DHKeyPair, peer_public: int) -> bytes:
    """The raw shared group element, serialized.

    Both sides compute ``peer_public ** own.private``; validation rejects
    elements outside the prime-order subgroup (small-subgroup attacks).
    """
    if not own.group.contains(peer_public):
        raise CryptoError("peer public value is not in the prime-order subgroup")
    value = own.group.power(peer_public, own.private)
    width = (own.group.p.bit_length() + 7) // 8
    return value.to_bytes(width, "big")


def derive_key(own: DHKeyPair, peer_public: int, length: int = 32,
               context: bytes = b"repro/dh") -> bytes:
    """HKDF-derive a symmetric key from the DH shared secret."""
    return hkdf(shared_secret(own, peer_public), length, info=context)
