"""Boneh–Franklin Identity-Based Encryption (BasicIdent).

Section III-E of the paper: "In an Identity Based Encryption scheme, public
keys can be any arbitrary string like email addresses. In such schemes,
there is a trusted third party named Private Key Generator (PKG) that
produces corresponding private keys."

The PKG here is an explicit object (:class:`PrivateKeyGenerator`) because
the DOSN layer models it as a (semi-)trusted service whose exposure is
measured by the provider-exposure experiments.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import hkdf
from repro.crypto.pairing import G1Element, PairingGroup, pairing_group
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import DecryptionError

_DEFAULT_RNG = _random.Random(0x1BE)


@dataclass(frozen=True)
class IBEPublicParams:
    """System parameters published by the PKG: ``(g, g^s)``."""

    group: PairingGroup
    g: G1Element
    g_s: G1Element


@dataclass(frozen=True)
class IBEPrivateKey:
    """A user's extracted key ``d_ID = H(ID)^s``."""

    identity: str
    d: G1Element


@dataclass(frozen=True)
class IBECiphertext:
    """``(U, V) = (g^r, AEAD under key derived from e(H(ID), g^s)^r)``."""

    u: G1Element
    v: bytes


def _identity_point(group: PairingGroup, identity: str) -> G1Element:
    return group.hash_to_g1(b"repro/ibe/id/" + identity.encode())


class PrivateKeyGenerator:
    """The IBE trusted third party: holds the master secret ``s``.

    ``extract`` is the only operation that touches the master secret; the
    public parameters are safe to broadcast.
    """

    def __init__(self, level: str = "TOY",
                 rng: Optional[_random.Random] = None) -> None:
        self.group = pairing_group(level)
        rng = rng or _DEFAULT_RNG
        self._s = self.group.random_scalar(rng)
        self.params = IBEPublicParams(
            group=self.group, g=self.group.generator,
            g_s=self.group.generator ** self._s)

    def extract(self, identity: str) -> IBEPrivateKey:
        """Issue the private key for an identity string."""
        return IBEPrivateKey(identity=identity,
                             d=_identity_point(self.group, identity) ** self._s)


def encrypt(params: IBEPublicParams, identity: str, message: bytes,
            rng: Optional[_random.Random] = None) -> IBECiphertext:
    """Encrypt to an identity string — no per-user key exchange needed."""
    rng = rng or _DEFAULT_RNG
    group = params.group
    r = group.random_scalar(rng)
    q_id = _identity_point(group, identity)
    shared = group.pair(q_id, params.g_s) ** r
    key = hkdf(shared.to_bytes(), 32, info=b"repro/ibe/kem")
    return IBECiphertext(u=params.g ** r,
                         v=AuthenticatedCipher(key).encrypt(message, rng=rng))


def decrypt(params: IBEPublicParams, private_key: IBEPrivateKey,
            ciphertext: IBECiphertext) -> bytes:
    """Decrypt with an extracted key: ``e(d_ID, U) == e(H(ID), g^s)^r``."""
    shared = params.group.pair(private_key.d, ciphertext.u)
    key = hkdf(shared.to_bytes(), 32, info=b"repro/ibe/kem")
    try:
        return AuthenticatedCipher(key).decrypt(ciphertext.v)
    except DecryptionError:
        raise DecryptionError(
            f"IBE decryption failed (key for {private_key.identity!r} "
            "does not match this ciphertext)")
