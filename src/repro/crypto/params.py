"""Precomputed cryptographic domain parameters.

All constants here were generated offline by the scripts in ``scripts/``
(``gen_pairing_params.py`` for the pairing curves, a safe-prime search for
the discrete-log groups) and are *re-validated* by the test suite
(primality, divisibility, supersingularity conditions).  Precomputing them
keeps import and test times flat: safe-prime and pairing-parameter searches
are the only genuinely slow operations in the substrate.

Three sizes per primitive:

* ``TOY``   — fast enough for unit tests that run hundreds of operations,
* ``TEST``  — integration-test scale,
* ``STD``   — benchmark scale with realistic asymmetric/symmetric ratios.

None of these parameter sets provides real-world security margins; see the
security disclaimer in DESIGN.md.
"""

from __future__ import annotations

#: Supersingular-curve pairing parameters: ``y^2 = x^3 + x`` over ``F_p``,
#: ``p = 3 (mod 4)``, prime subgroup order ``q`` with ``p + 1 = q * cofactor``.
PAIRING_PARAMS = {
    "TOY": {
        "p": 783376357034882091553273980020170686108310915583,
        "q": 17324573639174612641,
        "cofactor": 45217641331357125456622324224,
    },
    "TEST": {
        "p": 59753222063495396639173630142445474840517631933825542990681863366071816791183,
        "q": 255410907744136691636095715076177836731,
        "cofactor": 233949374328814717438025878044045708464,
    },
    "STD": {
        "p": 6078693918444079350007075869514518581173749831671029029319305904250515683273723046087908112651726372846124374711693040982966312251716510864346052536199667,
        "q": 882857777327198621437422122265070572194596203571,
        "cofactor": 6885247063062611502279296302405231860216792219200970387671755402393356353672152498385332650103927808834108,
    },
}

#: Safe primes ``p = 2q + 1`` for Diffie–Hellman / ElGamal / Schnorr groups.
#: Keys are the bit length of ``p``.
SAFE_PRIMES = {
    256: 72192058570415257234675955864498192343475216262492475477866359133446051600883,
    512: 13174974619230833231811958393521487527812795278232024534365071356863514430258805314920466549450784026925594550950152837346665881068076306719739734100593943,
    1024: 107986599811947686781428401075021915673232004200898510078629587557423136982950568338679534409756629881112553453094006629574007027462709201309710640430508136957661586237438220330984753643593225431639141825360743795151643981552798605507854676753290492637875336478569062029862714058815308608935340055536438746283,
}

#: Default modulus sizes per named level, shared by RSA/ElGamal/DH/Schnorr.
LEVEL_BITS = {"TOY": 256, "TEST": 512, "STD": 1024}


def safe_prime(bits: int) -> int:
    """Look up a precomputed safe prime by modulus size."""
    try:
        return SAFE_PRIMES[bits]
    except KeyError:
        raise KeyError(
            f"no precomputed safe prime of {bits} bits; "
            f"available: {sorted(SAFE_PRIMES)}")
