"""Ciphertext-Policy Attribute-Based Encryption (Bethencourt–Sahai–Waters).

Section III-D of the paper: attributes like ``relative`` or ``doctor`` are
embedded in users' secret keys, and every ciphertext carries an *access
structure* — "any logical expression over the selected attributes, for
instance ('relative' OR 'painter') or ('relative' AND 'doctor')".  This is
the scheme behind Persona and Cachet.

Implemented faithfully from the CP-ABE paper (SP'07) over the Type-1 pairing
in :mod:`repro.crypto.pairing`:

* setup:    ``pk = (g, h=g^beta, e(g,g)^alpha)``, ``msk = (beta, g^alpha)``
* keygen:   ``D = g^((alpha+r)/beta)``, per-attribute
  ``D_j = g^r * H(j)^{r_j}``, ``D'_j = g^{r_j}``
* encrypt:  secret ``s`` is Shamir-shared down the access tree; leaves carry
  ``C_y = g^{q_y(0)}`` and ``C'_y = H(att)^{q_y(0)}``
* decrypt:  pairings at satisfied leaves, Lagrange interpolation up the tree.

The policy language supports ``and`` / ``or`` / parentheses and explicit
``k of (...)`` threshold gates, e.g. ``"2 of (family, doctor, colleague)"``.
"""

from __future__ import annotations

import random as _random
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.crypto.hashing import hkdf
from repro.crypto.numbertheory import (lagrange_coefficient, modinv,
                                       poly_eval, random_polynomial)
from repro.crypto.pairing import G1Element, GTElement, PairingGroup, pairing_group
from repro.crypto.symmetric import AuthenticatedCipher
from repro.exceptions import DecryptionError, PolicyError

_DEFAULT_RNG = _random.Random(0xABE)


# --------------------------------------------------------------------------
# Access-tree policy language
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PolicyLeaf:
    """A leaf node demanding one attribute."""

    attribute: str


@dataclass(frozen=True)
class PolicyGate:
    """An interior ``threshold``-of-``children`` gate.

    AND is ``threshold == len(children)``; OR is ``threshold == 1``.
    """

    threshold: int
    children: Tuple["PolicyNode", ...]

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= len(self.children):
            raise PolicyError(
                f"threshold {self.threshold} invalid for "
                f"{len(self.children)} children")


PolicyNode = Union[PolicyLeaf, PolicyGate]

_TOKEN_RE = re.compile(
    r"\s*(\(|\)|,|\bAND\b|\bOR\b|\band\b|\bor\b|\bof\b|\bOF\b"
    r"|[A-Za-z0-9_:.#@\-]+)")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise PolicyError(f"cannot tokenize policy near {text[pos:]!r}")
            break
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the policy grammar.

    ``expr := term (('or') term)*``
    ``term := factor (('and') factor)*``
    ``factor := attribute | '(' expr ')' | INT 'of' '(' expr (',' expr)* ')'``
    """

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of policy")
        self._pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got.lower() != token:
            raise PolicyError(f"expected {token!r}, got {got!r}")

    def parse(self) -> PolicyNode:
        node = self._expr()
        if self._peek() is not None:
            raise PolicyError(f"trailing tokens: {self._tokens[self._pos:]}")
        return node

    def _expr(self) -> PolicyNode:
        children = [self._term()]
        while self._peek() is not None and self._peek().lower() == "or":
            self._next()
            children.append(self._term())
        if len(children) == 1:
            return children[0]
        return PolicyGate(threshold=1, children=tuple(children))

    def _term(self) -> PolicyNode:
        children = [self._factor()]
        while self._peek() is not None and self._peek().lower() == "and":
            self._next()
            children.append(self._factor())
        if len(children) == 1:
            return children[0]
        return PolicyGate(threshold=len(children), children=tuple(children))

    def _factor(self) -> PolicyNode:
        token = self._next()
        if token == "(":
            node = self._expr()
            self._expect(")")
            return node
        if token.isdigit() and self._peek() is not None \
                and self._peek().lower() == "of":
            self._next()  # 'of'
            self._expect("(")
            children = [self._expr()]
            while self._peek() == ",":
                self._next()
                children.append(self._expr())
            self._expect(")")
            return PolicyGate(threshold=int(token), children=tuple(children))
        if token in (")", ",") or token.lower() in ("and", "or", "of"):
            raise PolicyError(f"unexpected {token!r} in policy")
        return PolicyLeaf(attribute=token)


def parse_policy(policy: Union[str, PolicyNode]) -> PolicyNode:
    """Parse a policy string into an access tree (idempotent on trees)."""
    if isinstance(policy, (PolicyLeaf, PolicyGate)):
        return policy
    tokens = _tokenize(policy)
    if not tokens:
        raise PolicyError("empty policy")
    return _Parser(tokens).parse()


def policy_attributes(node: PolicyNode) -> FrozenSet[str]:
    """The set of attribute names mentioned anywhere in the tree."""
    if isinstance(node, PolicyLeaf):
        return frozenset([node.attribute])
    result: FrozenSet[str] = frozenset()
    for child in node.children:
        result |= policy_attributes(child)
    return result


def policy_satisfied(node: PolicyNode, attributes: Sequence[str]) -> bool:
    """Whether a set of attributes satisfies the access tree."""
    have = set(attributes)
    if isinstance(node, PolicyLeaf):
        return node.attribute in have
    satisfied = sum(1 for child in node.children
                    if policy_satisfied(child, attributes))
    return satisfied >= node.threshold


# --------------------------------------------------------------------------
# The CP-ABE scheme
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ABEPublicKey:
    """Public parameters ``(g, h = g^beta, e(g,g)^alpha)``."""

    group: PairingGroup
    g: G1Element
    h: G1Element
    e_gg_alpha: GTElement


@dataclass(frozen=True)
class ABEMasterKey:
    """Master secret ``(beta, g^alpha)`` held by the attribute authority."""

    beta: int
    g_alpha: G1Element


@dataclass(frozen=True)
class ABESecretKey:
    """A user's key for an attribute set."""

    attributes: FrozenSet[str]
    d: G1Element
    components: Dict[str, Tuple[G1Element, G1Element]]  # attr -> (D_j, D'_j)


@dataclass(frozen=True)
class _LeafCiphertext:
    c_y: G1Element      # g^{q_y(0)}
    c_y_prime: G1Element  # H(att)^{q_y(0)}


@dataclass(frozen=True)
class ABECiphertext:
    """A CP-ABE ciphertext: the blinded GT payload plus per-leaf shares."""

    policy: PolicyNode
    c_tilde: GTElement  # m * e(g,g)^{alpha s}
    c: G1Element        # h^s
    leaves: Dict[Tuple[int, ...], _LeafCiphertext]  # tree-path -> components


class CPABE:
    """A CP-ABE context bound to one pairing parameter set."""

    def __init__(self, level: str = "TOY") -> None:
        self.group = pairing_group(level)

    def _hash_attribute(self, attribute: str) -> G1Element:
        return self.group.hash_to_g1(b"repro/abe/attr/" + attribute.encode())

    def setup(self, rng: Optional[_random.Random] = None
              ) -> Tuple[ABEPublicKey, ABEMasterKey]:
        """Generate public parameters and the master secret key."""
        rng = rng or _DEFAULT_RNG
        g = self.group.generator
        alpha = self.group.random_scalar(rng)
        beta = self.group.random_scalar(rng)
        e_gg = self.group.pair(g, g)
        pk = ABEPublicKey(group=self.group, g=g, h=g ** beta,
                          e_gg_alpha=e_gg ** alpha)
        return pk, ABEMasterKey(beta=beta, g_alpha=g ** alpha)

    def keygen(self, pk: ABEPublicKey, msk: ABEMasterKey,
               attributes: Sequence[str],
               rng: Optional[_random.Random] = None) -> ABESecretKey:
        """Issue a secret key for an attribute set."""
        rng = rng or _DEFAULT_RNG
        q = self.group.q
        r = self.group.random_scalar(rng)
        d = (msk.g_alpha * (pk.g ** r)) ** modinv(msk.beta, q)
        components: Dict[str, Tuple[G1Element, G1Element]] = {}
        g_r = pk.g ** r
        for attribute in attributes:
            r_j = self.group.random_scalar(rng)
            components[attribute] = (
                g_r * (self._hash_attribute(attribute) ** r_j),
                pk.g ** r_j,
            )
        return ABESecretKey(attributes=frozenset(attributes), d=d,
                            components=components)

    # -- encryption --------------------------------------------------------

    def _share_secret(self, node: PolicyNode, secret: int,
                      path: Tuple[int, ...], rng: _random.Random,
                      out: Dict[Tuple[int, ...], Tuple[PolicyLeaf, int]]) -> None:
        """Shamir-share ``secret`` down the access tree, collecting leaf shares."""
        if isinstance(node, PolicyLeaf):
            out[path] = (node, secret)
            return
        q = self.group.q
        poly = random_polynomial(node.threshold - 1, secret, q, rng)
        for index, child in enumerate(node.children, start=1):
            self._share_secret(child, poly_eval(poly, index, q),
                               path + (index,), rng, out)

    def encrypt_element(self, pk: ABEPublicKey, message: GTElement,
                        policy: Union[str, PolicyNode],
                        rng: Optional[_random.Random] = None) -> ABECiphertext:
        """Encrypt a GT element under an access policy."""
        rng = rng or _DEFAULT_RNG
        tree = parse_policy(policy)
        s = self.group.random_scalar(rng)
        shares: Dict[Tuple[int, ...], Tuple[PolicyLeaf, int]] = {}
        self._share_secret(tree, s, (), rng, shares)
        leaves = {
            path: _LeafCiphertext(
                c_y=pk.g ** share,
                c_y_prime=self._hash_attribute(leaf.attribute) ** share)
            for path, (leaf, share) in shares.items()
        }
        return ABECiphertext(policy=tree,
                             c_tilde=message * (pk.e_gg_alpha ** s),
                             c=pk.h ** s, leaves=leaves)

    # -- decryption --------------------------------------------------------

    def _decrypt_node(self, node: PolicyNode, path: Tuple[int, ...],
                      ct: ABECiphertext, sk: ABESecretKey
                      ) -> Optional[GTElement]:
        """Recursive DecryptNode: ``e(g,g)^{r * q_node(0)}`` or None."""
        if isinstance(node, PolicyLeaf):
            if node.attribute not in sk.components:
                return None
            d_j, d_j_prime = sk.components[node.attribute]
            leaf_ct = ct.leaves[path]
            num = self.group.pair(d_j, leaf_ct.c_y)
            den = self.group.pair(d_j_prime, leaf_ct.c_y_prime)
            return num / den
        results: List[Tuple[int, GTElement]] = []
        for index, child in enumerate(node.children, start=1):
            if len(results) == node.threshold:
                break
            value = self._decrypt_node(child, path + (index,), ct, sk)
            if value is not None:
                results.append((index, value))
        if len(results) < node.threshold:
            return None
        indices = [i for i, _ in results]
        acc = self.group.one_gt()
        for i, value in results:
            coeff = lagrange_coefficient(i, indices, 0, self.group.q)
            acc = acc * (value ** coeff)
        return acc

    def decrypt_element(self, ct: ABECiphertext,
                        sk: ABESecretKey) -> GTElement:
        """Recover the GT element; raises when attributes don't satisfy."""
        a = self._decrypt_node(ct.policy, (), ct, sk)
        if a is None:
            raise DecryptionError(
                "attribute set does not satisfy the ciphertext policy")
        # e(C, D) = e(h^s, g^{(alpha+r)/beta}) = e(g,g)^{s(alpha+r)}
        blinding = self.group.pair(ct.c, sk.d) / a
        return ct.c_tilde / blinding

    # -- hybrid byte-level API ----------------------------------------------

    def encrypt_bytes(self, pk: ABEPublicKey, message: bytes,
                      policy: Union[str, PolicyNode],
                      rng: Optional[_random.Random] = None
                      ) -> Tuple[ABECiphertext, bytes]:
        """KEM/DEM hybrid: ABE-wrap a random GT key, AEAD the payload."""
        rng = rng or _DEFAULT_RNG
        kem = self.group.random_gt(rng)
        header = self.encrypt_element(pk, kem, policy, rng)
        key = hkdf(kem.to_bytes(), 32, info=b"repro/abe/kem")
        return header, AuthenticatedCipher(key).encrypt(message, rng=rng)

    def decrypt_bytes(self, header: ABECiphertext, blob: bytes,
                      sk: ABESecretKey) -> bytes:
        """Invert :meth:`encrypt_bytes`."""
        kem = self.decrypt_element(header, sk)
        key = hkdf(kem.to_bytes(), 32, info=b"repro/abe/kem")
        return AuthenticatedCipher(key).decrypt(blob)
