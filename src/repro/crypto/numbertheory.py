"""Number-theoretic primitives underpinning the crypto substrate.

Everything here is implemented from scratch on Python integers: primality
testing (deterministic small-prime sieve + Miller–Rabin), prime generation
(random and safe primes), modular inverses via the extended Euclidean
algorithm, the Chinese Remainder Theorem, Jacobi symbols and modular square
roots (Tonelli–Shanks, with the fast ``p % 4 == 3`` path used heavily by the
pairing code).

All random choices flow through an injected :class:`random.Random` so callers
(and tests) can be fully deterministic.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import CryptoError

#: Small primes used both for trial division and for quick sieving during
#: prime generation.
SMALL_PRIMES: Tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211,
    223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349,
)

_DEFAULT_RNG = _random.Random(0x5EED)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises :class:`CryptoError` when the inverse does not exist.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise CryptoError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def is_probable_prime(n: int, rounds: int = 40,
                      rng: Optional[_random.Random] = None) -> bool:
    """Miller–Rabin primality test with a small-prime pre-filter.

    ``rounds`` Miller–Rabin witnesses give a false-positive probability of at
    most ``4**-rounds`` for adversarially chosen composites.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or _DEFAULT_RNG
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[_random.Random] = None) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise CryptoError("primes need at least 2 bits")
    rng = rng or _DEFAULT_RNG
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: Optional[_random.Random] = None) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``q`` prime.

    Safe primes give prime-order subgroups of index 2, which is what the
    Diffie–Hellman, ElGamal and Schnorr implementations build on.
    """
    rng = rng or _DEFAULT_RNG
    while True:
        q = generate_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime moduli.

    Returns the unique ``x`` modulo the product of ``moduli`` with
    ``x % moduli[i] == residues[i]`` for all ``i``.
    """
    if len(residues) != len(moduli):
        raise CryptoError("CRT needs as many residues as moduli")
    if not moduli:
        raise CryptoError("CRT needs at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, m_i)
        if g != 1:
            raise CryptoError("CRT moduli must be pairwise coprime")
        x = (x + (r_i - x) * p % m_i * m) % (m * m_i)
        m *= m_i
    return x % m


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0``."""
    if n <= 0 or n % 2 == 0:
        raise CryptoError("Jacobi symbol requires positive odd n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """Whether ``a`` is a nonzero square modulo the odd prime ``p``."""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo the odd prime ``p``.

    Uses the fast exponentiation path when ``p % 4 == 3`` (the case for all
    pairing parameter sets) and Tonelli–Shanks otherwise.  Raises
    :class:`CryptoError` when ``a`` is not a quadratic residue.
    """
    a %= p
    if a == 0:
        return 0
    if not is_quadratic_residue(a, p):
        raise CryptoError(f"{a} is not a quadratic residue mod p")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli–Shanks for p % 4 == 1.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while jacobi(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        for i in range(1, m):
            t2 = t2 * t2 % p
            if t2 == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def lagrange_coefficient(i: int, indices: Sequence[int], x: int, q: int) -> int:
    """Lagrange basis polynomial Δ_{i,S}(x) evaluated modulo prime ``q``.

    Used by the ABE secret-sharing reconstruction and any threshold scheme:
    ``sum_i share_i * lagrange_coefficient(i, S, 0, q) == secret``.
    """
    num, den = 1, 1
    for j in indices:
        if j == i:
            continue
        num = num * ((x - j) % q) % q
        den = den * ((i - j) % q) % q
    return num * modinv(den, q) % q


def poly_eval(coeffs: Sequence[int], x: int, q: int) -> int:
    """Evaluate a polynomial (coefficients low-to-high degree) mod ``q``."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % q
    return acc


def random_polynomial(degree: int, constant: int, q: int,
                      rng: Optional[_random.Random] = None) -> List[int]:
    """Random degree-``degree`` polynomial over Z_q with fixed constant term.

    This is Shamir secret sharing's dealer step; the secret is ``constant``.
    """
    rng = rng or _DEFAULT_RNG
    return [constant % q] + [rng.randrange(q) for _ in range(degree)]


def int_to_bytes(n: int, length: Optional[int] = None) -> bytes:
    """Big-endian byte encoding of a non-negative integer."""
    if n < 0:
        raise CryptoError("cannot encode negative integers")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian integer decoding of a byte string."""
    return int.from_bytes(data, "big")
