"""Symmetric encryption: modes of operation and authenticated encryption.

This is the "symmetric key encryption" row of Table I (Section III-B of the
paper): the fast primitive that the hybrid schemes (Section III-F) wrap with
public-key machinery.  Provided here:

* PKCS#7 padding,
* AES-CBC and AES-CTR modes over :class:`repro.crypto.aes.AES`,
* encrypt-then-MAC authenticated encryption (:class:`AuthenticatedCipher`),
* :class:`StreamCipher`, a SHA-256-in-counter-mode stream cipher used as the
  default bulk cipher in the simulator (pure-Python AES is a correctness
  reference, not a throughput device).

All nonces/IVs are caller-supplied or drawn from an injected RNG so the
whole library stays deterministic under a fixed seed.
"""

from __future__ import annotations

import hashlib
import random as _random
from typing import Optional

from repro.crypto.aes import AES
from repro.crypto.hashing import hkdf, hmac_sha256, hmac_verify
from repro.exceptions import CryptoError, DecryptionError, InvalidKeyError
from repro.obs import hooks

_DEFAULT_RNG = _random.Random(0xC1F3)


def random_key(length: int = 32, rng: Optional[_random.Random] = None) -> bytes:
    """A fresh random key of ``length`` bytes."""
    rng = rng or _DEFAULT_RNG
    return bytes(rng.getrandbits(8) for _ in range(length))


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise CryptoError("block size must be in [1, 255]")
    pad_len = block_size - len(data) % block_size
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Remove PKCS#7 padding, validating every pad byte."""
    if not data or len(data) % block_size:
        raise DecryptionError("ciphertext length is not a padded multiple")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise DecryptionError("invalid padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("invalid padding bytes")
    return data[:-pad_len]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def aes_cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC with PKCS#7 padding; returns raw ciphertext (no IV prefix)."""
    if len(iv) != 16:
        raise CryptoError("CBC IV must be 16 bytes")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(padded), 16):
        block = cipher.encrypt_block(_xor(padded[i:i + 16], prev))
        out += block
        prev = block
    return bytes(out)


def aes_cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`aes_cbc_encrypt`."""
    if len(ciphertext) % 16:
        raise DecryptionError("CBC ciphertext must be a multiple of 16 bytes")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), 16):
        block = ciphertext[i:i + 16]
        out += _xor(cipher.decrypt_block(block), prev)
        prev = block
    return pkcs7_unpad(bytes(out))


def aes_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical).

    ``nonce`` is 8 bytes; the remaining 8 bytes of the counter block are a
    big-endian block counter.
    """
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    cipher = AES(key)
    out = bytearray()
    for counter in range((len(data) + 15) // 16):
        block = cipher.encrypt_block(nonce + counter.to_bytes(8, "big"))
        chunk = data[16 * counter:16 * counter + 16]
        out += _xor(chunk, block[:len(chunk)])
    return bytes(out)


class StreamCipher:
    """SHA-256-counter-mode stream cipher with HMAC authentication.

    The keystream block ``i`` is ``SHA256(key || nonce || i)``.  Under the
    random-oracle heuristic this is a PRF in counter mode — the same shape
    as AES-CTR but ~100x faster in pure Python, which is what the overlay
    simulation needs when peers encrypt thousands of content objects.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise InvalidKeyError("stream cipher keys must be >= 16 bytes")
        self._enc_key = hkdf(key, 32, info=b"repro/stream/enc")
        self._mac_key = hkdf(key, 32, info=b"repro/stream/mac")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        prefix = self._enc_key + nonce
        while len(out) < length:
            out += hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
            counter += 1
        return bytes(out[:length])

    def encrypt(self, plaintext: bytes,
                rng: Optional[_random.Random] = None) -> bytes:
        """Encrypt-then-MAC; output is ``nonce || ciphertext || tag``."""
        rng = rng or _DEFAULT_RNG
        with hooks.crypto_op("stream.encrypt", len(plaintext)):
            nonce = bytes(rng.getrandbits(8) for _ in range(16))
            body = _xor(plaintext, self._keystream(nonce, len(plaintext)))
            tag = hmac_sha256(self._mac_key, nonce + body)
            return nonce + body + tag

    def decrypt(self, blob: bytes) -> bytes:
        """Verify the MAC then strip nonce/tag and decrypt."""
        if len(blob) < 48:
            raise DecryptionError("ciphertext too short")
        with hooks.crypto_op("stream.decrypt", len(blob)):
            nonce, body, tag = blob[:16], blob[16:-32], blob[-32:]
            if not hmac_verify(self._mac_key, nonce + body, tag):
                raise DecryptionError("authentication tag mismatch")
            return _xor(body, self._keystream(nonce, len(body)))


class AuthenticatedCipher:
    """AES-CTR + HMAC-SHA256 encrypt-then-MAC AEAD.

    The single input key is split into independent encryption and MAC keys
    with HKDF; output format is ``nonce(8) || ciphertext || tag(32)``.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise InvalidKeyError("AEAD keys must be >= 16 bytes")
        self._enc_key = hkdf(key, 32, info=b"repro/aead/enc")
        self._mac_key = hkdf(key, 32, info=b"repro/aead/mac")

    def encrypt(self, plaintext: bytes, associated_data: bytes = b"",
                rng: Optional[_random.Random] = None) -> bytes:
        """Encrypt and authenticate ``plaintext`` (and bind ``associated_data``)."""
        rng = rng or _DEFAULT_RNG
        with hooks.crypto_op("aead.encrypt", len(plaintext)):
            nonce = bytes(rng.getrandbits(8) for _ in range(8))
            body = aes_ctr(self._enc_key, nonce, plaintext)
            tag = hmac_sha256(self._mac_key, associated_data + nonce + body)
            return nonce + body + tag

    def decrypt(self, blob: bytes, associated_data: bytes = b"") -> bytes:
        """Verify then decrypt; raises :class:`DecryptionError` on any tamper."""
        if len(blob) < 40:
            raise DecryptionError("ciphertext too short")
        with hooks.crypto_op("aead.decrypt", len(blob)):
            nonce, body, tag = blob[:8], blob[8:-32], blob[-32:]
            if not hmac_verify(self._mac_key,
                               associated_data + nonce + body, tag):
                raise DecryptionError("authentication tag mismatch")
            return aes_ctr(self._enc_key, nonce, body)
