"""Hash-based utilities: fast digests, HMAC, HKDF and hash-to-field maps.

These are the workhorse primitives behind the integrity layer (Section IV of
the paper: hash chains, history trees) and the key-derivation steps inside
the hybrid encryption schemes (Section III-F).  The from-scratch SHA-256
lives in :mod:`repro.crypto.sha256`; here we use :mod:`hashlib` for speed on
hot paths — the test suite proves the two agree.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Iterable

from repro.exceptions import CryptoError


def digest(data: bytes) -> bytes:
    """SHA-256 digest (32 bytes)."""
    return hashlib.sha256(data).digest()


def hexdigest(data: bytes) -> str:
    """SHA-256 digest as a hex string."""
    return hashlib.sha256(data).hexdigest()


def digest_many(parts: Iterable[bytes]) -> bytes:
    """Digest a sequence of byte strings with unambiguous length framing.

    Each part is prefixed with its 8-byte big-endian length, so
    ``digest_many([a, b]) != digest_many([a + b])`` — this prevents the
    concatenation ambiguities that break naive hash-chain constructions.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 (RFC 2104)."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time HMAC verification."""
    return _hmac.compare_digest(hmac_sha256(key, message), tag)


def hkdf(ikm: bytes, length: int, salt: bytes = b"", info: bytes = b"") -> bytes:
    """HKDF-SHA256 (RFC 5869) extract-then-expand key derivation."""
    if length > 255 * 32:
        raise CryptoError("HKDF output too long for SHA-256")
    prk = hmac_sha256(salt or b"\x00" * 32, ikm)
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def hash_to_int(data: bytes, modulus: int, domain: bytes = b"") -> int:
    """Hash arbitrary bytes to an integer in ``[0, modulus)``.

    Expands the digest with counter blocks until enough bits are available,
    then reduces; the extra 128 bits make the reduction bias negligible.
    The ``domain`` tag separates uses (e.g. ABE attribute hashing vs. IBBE
    identity hashing) so they behave as independent random oracles.
    """
    if modulus < 2:
        raise CryptoError("modulus must be at least 2")
    need = modulus.bit_length() + 128
    out = b""
    counter = 0
    while len(out) * 8 < need:
        out += hashlib.sha256(
            domain + counter.to_bytes(4, "big") + data).digest()
        counter += 1
    return int.from_bytes(out, "big") % modulus


def hash_to_nonzero(data: bytes, modulus: int, domain: bytes = b"") -> int:
    """Hash to an integer in ``[1, modulus)`` (never zero).

    Used wherever a zero value would be degenerate, e.g. IBBE identity
    hashes appearing in denominators.
    """
    value = hash_to_int(data, modulus - 1, domain)
    return value + 1


def chain_hash(previous: bytes, entry: bytes) -> bytes:
    """One link of a hash chain: ``H(len(prev) || prev || len(e) || e)``.

    The integrity layer (Section IV-B) builds provable partial orders out of
    these links.
    """
    return digest_many([previous, entry])
