"""Broadcast encryption: naive per-recipient BE and complete-subtree revocation.

Section III-E of the paper introduces broadcast encryption (Fiat–Naor) as
the ancestor of IBBE: "there exist a broadcast channel among the list of the
recipients ... the broadcaster selects a group of identities in order to
encrypt the messages for them".

Two constructions, contrasted by experiment E3:

* :class:`NaiveBroadcast` — one key wrap per recipient; header grows as
  O(|S|) but joins/leaves are trivial.
* :class:`CompleteSubtreeBE` — the NNL complete-subtree subset-cover scheme:
  users are leaves of a binary tree, each holds the ``log2(n)+1`` keys on
  its root path, and a broadcast to "everyone except the ``r`` revoked
  users" needs only ``O(r * log(n/r))`` key wraps.  This is the classic
  stateless-revocation trade-off the survey alludes to when discussing
  revocation costs.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.hashing import hkdf
from repro.crypto.symmetric import AuthenticatedCipher, random_key
from repro.exceptions import CryptoError, DecryptionError

_DEFAULT_RNG = _random.Random(0xBCA5)


@dataclass
class NaiveBroadcast:
    """Per-recipient key wrapping under pairwise shared keys.

    The broadcaster shares an independent symmetric key with every user
    (``user_keys``); broadcasting wraps the fresh content key once per
    recipient.  Header size is linear in the audience.
    """

    user_keys: Dict[str, bytes] = field(default_factory=dict)

    def register(self, user: str,
                 rng: Optional[_random.Random] = None) -> bytes:
        """Provision a user with a fresh pairwise key (returned to the user)."""
        key = random_key(32, rng or _DEFAULT_RNG)
        self.user_keys[user] = key
        return key

    def encrypt(self, recipients: Sequence[str], message: bytes,
                rng: Optional[_random.Random] = None
                ) -> Tuple[Dict[str, bytes], bytes]:
        """Returns ``(per-recipient wrapped keys, payload)``."""
        rng = rng or _DEFAULT_RNG
        content_key = random_key(32, rng)
        wraps = {}
        for user in recipients:
            if user not in self.user_keys:
                raise CryptoError(f"unknown recipient {user!r}")
            wraps[user] = AuthenticatedCipher(
                self.user_keys[user]).encrypt(content_key, rng=rng)
        payload = AuthenticatedCipher(content_key).encrypt(message, rng=rng)
        return wraps, payload

    @staticmethod
    def decrypt(user_key: bytes, wrapped: bytes, payload: bytes) -> bytes:
        """Unwrap the content key with the pairwise key, then decrypt."""
        content_key = AuthenticatedCipher(user_key).decrypt(wrapped)
        return AuthenticatedCipher(content_key).decrypt(payload)


@dataclass(frozen=True)
class SubtreeUserKeys:
    """A user's key material: the node keys along its leaf-to-root path."""

    user_index: int
    path_keys: Dict[int, bytes]  # node id (heap order) -> key


class CompleteSubtreeBE:
    """NNL complete-subtree broadcast encryption over ``n`` users.

    Nodes are numbered heap-style (root = 1); user ``i`` sits at leaf
    ``capacity + i``.  Node keys are derived from a master secret so the
    broadcaster stores O(1) state.
    """

    def __init__(self, capacity: int,
                 rng: Optional[_random.Random] = None) -> None:
        if capacity < 1 or capacity & (capacity - 1):
            raise CryptoError("capacity must be a positive power of two")
        self.capacity = capacity
        self._master = random_key(32, rng or _DEFAULT_RNG)

    def _node_key(self, node: int) -> bytes:
        return hkdf(self._master, 32,
                    info=b"repro/cs-be/node/" + node.to_bytes(8, "big"))

    def _leaf(self, user_index: int) -> int:
        if not 0 <= user_index < self.capacity:
            raise CryptoError(f"user index {user_index} out of range")
        return self.capacity + user_index

    def user_keys(self, user_index: int) -> SubtreeUserKeys:
        """The ``log2(n)+1`` keys user ``user_index`` receives at join time."""
        node = self._leaf(user_index)
        keys = {}
        while node >= 1:
            keys[node] = self._node_key(node)
            node //= 2
        return SubtreeUserKeys(user_index=user_index, path_keys=keys)

    def cover(self, revoked: Sequence[int]) -> List[int]:
        """The complete-subtree cover of all non-revoked leaves.

        Standard NNL algorithm: mark the Steiner tree of revoked leaves;
        every non-marked child hanging off the Steiner tree roots one cover
        subtree.  With no revocations the cover is just the root.
        """
        revoked_set = set(revoked)
        for r in revoked_set:
            self._leaf(r)  # range check
        if not revoked_set:
            return [1]
        if len(revoked_set) == self.capacity:
            return []
        steiner: Set[int] = set()
        for r in revoked_set:
            node = self._leaf(r)
            while node >= 1 and node not in steiner:
                steiner.add(node)
                node //= 2
        cover: List[int] = []
        for node in steiner:
            if 2 * node <= 2 * self.capacity - 1:  # interior node
                for child in (2 * node, 2 * node + 1):
                    if child not in steiner:
                        cover.append(child)
        return sorted(cover)

    def encrypt(self, revoked: Sequence[int], message: bytes,
                rng: Optional[_random.Random] = None
                ) -> Tuple[Dict[int, bytes], bytes]:
        """Encrypt to everyone except ``revoked``.

        Returns ``(cover-node -> wrapped content key, payload)``; header
        size equals the cover size, ``O(r log(n/r))``.
        """
        rng = rng or _DEFAULT_RNG
        content_key = random_key(32, rng)
        wraps = {
            node: AuthenticatedCipher(self._node_key(node)).encrypt(
                content_key, rng=rng)
            for node in self.cover(revoked)
        }
        payload = AuthenticatedCipher(content_key).encrypt(message, rng=rng)
        return wraps, payload

    @staticmethod
    def decrypt(user: SubtreeUserKeys, wraps: Dict[int, bytes],
                payload: bytes) -> bytes:
        """Decrypt if any cover node lies on the user's root path."""
        for node, wrapped in wraps.items():
            key = user.path_keys.get(node)
            if key is not None:
                content_key = AuthenticatedCipher(key).decrypt(wrapped)
                return AuthenticatedCipher(content_key).decrypt(payload)
        raise DecryptionError(
            f"user {user.user_index} is revoked from this broadcast")
