"""Pseudorandom functions and the oblivious PRF (OPRF) protocol.

Section III-F of the paper describes Hummingbird's hybrid scheme: "the
symmetric key is derived by applying a combination of a PRF and a hash
function on a particular part of the message (hashtag). For the key
dissemination an oblivious pseudo random function protocol must be followed
between user and his friends."

* :class:`PRF` — HMAC-SHA256 keyed function family.
* The 2HashDH OPRF: ``F_s(x) = H2(x, H1(x)^s)`` over a Schnorr group.  The
  receiver blinds ``H1(x)`` with a random exponent, the sender raises it to
  the secret ``s``, the receiver unblinds — the sender never learns ``x``,
  the receiver never learns ``s``.  Implemented as explicit message-passing
  state machines so the DOSN layer can run it across simulated peers.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.groups import SchnorrGroup, group_for_level
from repro.crypto.hashing import hkdf, hmac_sha256
from repro.crypto.numbertheory import modinv
from repro.exceptions import CryptoError

_DEFAULT_RNG = _random.Random(0x0F4F)


class PRF:
    """An HMAC-SHA256 pseudorandom function family member ``f_s``."""

    def __init__(self, secret: bytes) -> None:
        if len(secret) < 16:
            raise CryptoError("PRF secrets must be >= 16 bytes")
        self._secret = secret

    def evaluate(self, value: bytes, length: int = 32) -> bytes:
        """``f_s(x)``, expanded to ``length`` bytes."""
        return hkdf(hmac_sha256(self._secret, value), length,
                    info=b"repro/prf/expand")


@dataclass(frozen=True)
class OPRFKey:
    """The sender's OPRF secret ``s`` (an exponent in the group)."""

    group: SchnorrGroup
    s: int


def generate_oprf_key(level: str = "TOY",
                      rng: Optional[_random.Random] = None,
                      group: Optional[SchnorrGroup] = None) -> OPRFKey:
    """Fresh OPRF secret."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    return OPRFKey(group=group, s=group.random_scalar(rng))


def _finalize(group: SchnorrGroup, value: bytes, element: int,
              length: int) -> bytes:
    width = (group.p.bit_length() + 7) // 8
    return hkdf(value + element.to_bytes(width, "big"), length,
                info=b"repro/oprf/H2")


def evaluate_locally(key: OPRFKey, value: bytes, length: int = 32) -> bytes:
    """Direct evaluation ``F_s(x)`` by the key holder (no protocol)."""
    h1 = key.group.hash_to_element(value, domain=b"oprf/H1")
    return _finalize(key.group, value, key.group.power(h1, key.s), length)


@dataclass
class OPRFRequest:
    """Receiver-side state after blinding; ``blinded`` goes on the wire."""

    group: SchnorrGroup
    value: bytes
    blinded: int
    _r: int

    def finalize(self, evaluated: int, length: int = 32) -> bytes:
        """Unblind the sender's response and apply the outer hash.

        ``evaluated`` must be ``blinded^s``; unblinding computes
        ``H1(x)^s = evaluated^(1/r)``.
        """
        if not self.group.contains(evaluated):
            raise CryptoError("OPRF response outside the subgroup")
        unblinded = self.group.power(evaluated, modinv(self._r, self.group.q))
        return _finalize(self.group, self.value, unblinded, length)


def blind_request(value: bytes, level: str = "TOY",
                  rng: Optional[_random.Random] = None,
                  group: Optional[SchnorrGroup] = None) -> OPRFRequest:
    """Receiver step 1: blind the hashed input with a random exponent."""
    group = group or group_for_level(level)
    rng = rng or _DEFAULT_RNG
    r = group.random_scalar(rng)
    h1 = group.hash_to_element(value, domain=b"oprf/H1")
    return OPRFRequest(group=group, value=value,
                       blinded=group.power(h1, r), _r=r)


def evaluate_blinded(key: OPRFKey, blinded: int) -> int:
    """Sender step 2: raise the blinded element to the secret exponent.

    The input is a uniformly random group element from the sender's point of
    view, so nothing about ``x`` leaks.
    """
    if not key.group.contains(blinded):
        raise CryptoError("blinded OPRF input outside the subgroup")
    return key.group.power(blinded, key.s)
