"""Node-ID certificates: the classic secure-DHT identity defense.

Castro et al. (OSDI 2002) and the DOSN storage layers that assume a
"secure DHT lookup" (DECENT, Cachet) all rest on the same primitive: a
node's overlay identifier must be *certified* — derived by hashing
identity material the node cannot choose (``id = H(pubkey)``) and bound
to the node with a signature proving possession of the matching private
key.  An adversary can then neither choose its position on the ring (sit
exactly in front of a victim key) nor fabricate identities faster than
it can generate keys it actually controls.

:class:`IdCertifier` plays the offline certification authority of the
scheme.  It derives one deterministic Schnorr keypair per node name
(seeded from the name, never from a simulator RNG — installing
certification moves no experiment's random stream), fixes the node's
*identity material* — the byte string whose hash is the certified id —
and signs the ``(name, id)`` binding.  By default the material is the
public key itself, exactly the real scheme.  The simulated overlays
pre-date certification and already derive positions by hashing a
name-derived byte string (``repro/chord/<name>`` / ``repro/kad/<name>``);
passing that derivation as ``material_of`` makes the certified id equal
the overlay position, with the same security property: an id is valid
only together with a hash preimage, and preimages cannot be chosen.

A claim check verifies the certificate once (real Schnorr verification
over the TOY group; cached — certificates are immutable) and then
compares the claimed identifier against the certified one, so both
attack shapes fail:

* **chosen ID** — the claimed id was picked adjacent to the key; no
  identity material the adversary holds hashes to it;
* **unverifiable pubkey** — a fabricated key/signature pair fails
  Schnorr verification, so the certificate itself is rejected.

A certified-but-*lying* peer (true id, malicious routing answer) passes
this check by design; that is what disjoint-path voting is for (see
:mod:`repro.adversary.defense`).
"""

from __future__ import annotations

import hashlib
import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.crypto.signatures import (SchnorrPublicKey, SchnorrSignature,
                                     generate_schnorr_keypair)
from repro.exceptions import SignatureError

__all__ = ["NodeIdCertificate", "IdCertifier", "derive_node_id"]


def derive_node_id(material: bytes, bits: int) -> int:
    """The certified identifier: ``H(material)`` mapped into the id space.

    ``material`` is the node's unforgeable identity bytes — the public
    key in the real scheme, the overlay's name derivation in the
    simulation (see the module docstring).
    """
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def _cert_message(name: str, node_id: int, bits: int) -> bytes:
    return (b"repro/nodecert|" + name.encode() + b"|"
            + node_id.to_bytes(8, "big") + bytes([bits]))


@dataclass(frozen=True)
class NodeIdCertificate:
    """One node's identity binding: ``(name, material, id, signature)``."""

    name: str
    public_key: SchnorrPublicKey
    material: bytes
    node_id: int
    bits: int
    signature: SchnorrSignature

    def verify(self) -> bool:
        """Both halves of the binding: ``id == H(material)`` and the
        self-signature proves possession of the matching private key."""
        if self.node_id != derive_node_id(self.material, self.bits):
            return False
        return self.public_key.verify(
            _cert_message(self.name, self.node_id, self.bits),
            self.signature)


class IdCertifier:
    """Per-overlay certificate registry (one id space each).

    Keypairs are generated lazily on first use, deterministically from
    the node *name* — a bare (undefended) experiment that never consults
    certificates never pays for key generation, and no simulator RNG is
    ever touched.  ``material_of`` overrides the identity material
    (default: the public key bytes); the adversary model passes the
    overlay's own position derivation so certified ids equal ring
    positions.
    """

    def __init__(self, bits: int, level: str = "TOY",
                 material_of: Optional[Callable[[str], bytes]] = None
                 ) -> None:
        self.bits = bits
        self.level = level
        self.material_of = material_of
        self._certs: Dict[str, NodeIdCertificate] = {}
        self._verified: Dict[str, bool] = {}

    def certificate(self, name: str) -> NodeIdCertificate:
        """The (lazily issued) certificate for ``name``."""
        cert = self._certs.get(name)
        if cert is None:
            rng = _random.Random(f"repro/nodecert/{self.bits}/{name}")
            signer = generate_schnorr_keypair(self.level, rng)
            public = signer.public_key
            material = public.to_bytes() if self.material_of is None \
                else self.material_of(name)
            node_id = derive_node_id(material, self.bits)
            signature = signer.sign(
                _cert_message(name, node_id, self.bits), rng)
            cert = NodeIdCertificate(name=name, public_key=public,
                                     material=material, node_id=node_id,
                                     bits=self.bits, signature=signature)
            self._certs[name] = cert
        return cert

    def certified_id(self, name: str) -> int:
        """The certified overlay identifier of ``name``."""
        return self.certificate(name).node_id

    def check(self, name: str, claimed_id: int) -> bool:
        """Verify a routing response's id claim for ``name``.

        The certificate is verified once per name (cached); the claim
        passes only when it equals the certified identifier.
        """
        verified = self._verified.get(name)
        if verified is None:
            verified = self.certificate(name).verify()
            self._verified[name] = verified
        return verified and claimed_id == self.certificate(name).node_id

    def check_or_raise(self, name: str, claimed_id: int) -> None:
        """Raise :class:`SignatureError` on a failed claim check."""
        if not self.check(name, claimed_id):
            raise SignatureError(
                f"node-id claim {claimed_id} for {name!r} does not match "
                "its certificate")
