#!/usr/bin/env python3
"""The paper's open problems (Section VI), demonstrated live.

The survey ends with problems it declares open.  This script runs each
one: the attack that makes it a problem, and the best cited mitigation —
so you can see precisely where the state of the art stops.

Run:  python examples/open_problems.py
"""

import random

from repro.extensions import (AdBroker, AdClient, Advertisement,
                              ResharingSimulation, SybilAttack,
                              attribute_inference_accuracy,
                              deanonymize_by_seeds, degree_cut_detection,
                              inject_sybils, naive_anonymize)
from repro.extensions.anonymization import reidentification_rate
from repro.extensions.inference import plant_homophilous_attribute
from repro.workloads import attach_trust, social_graph

rng = random.Random(7)


def main() -> None:
    graph = social_graph(300, kind="ba", seed=1)

    print("== Implicit information leakage ==")
    labels = plant_homophilous_attribute(graph, ("red", "blue"),
                                         homophily=0.9, seed=2)
    for hide in (0.3, 0.7):
        accuracy, coverage = attribute_inference_accuracy(
            graph, labels, hide_fraction=hide, seed=3)
        print(f"  {hide:.0%} of users hide the attribute -> friends' "
              f"disclosures still predict it with {accuracy:.0%} accuracy "
              f"({coverage:.0%} coverage)")
    print("  -> hiding your own data is not enough; no deployed fix.\n")

    print("== Data resharing ==")
    sim = ResharingSimulation(social_graph(150, kind="ws", seed=4),
                              reshare_probability=0.3, seed=5)
    result = sim.run_with_watermarks("user0", ["user1", "user2"],
                                     b"private photo", b"k" * 32)
    print(f"  shared with 2 friends; after resharing it reached "
          f"{len(result['unintended'])} unintended users "
          f"({result['unintended_fraction']:.0%} of outsiders)")
    print(f"  watermark tracing identifies the leaking friend: "
          f"{result['traceable']} — deterrence, not prevention.\n")

    print("== Privacy-preserving advertising ==")
    broker = AdBroker()
    for topic in ("privacy", "cars", "cats"):
        broker.publish(Advertisement(f"ad-{topic}", (topic,)))
    client = AdClient("alice", ["privacy", "cats"], rng)
    ads = client.select_ads(broker.broadcast())
    clicked = client.report_click(broker, ads[0])
    knowledge = broker.broker_knowledge()
    print(f"  locally selected ads: {[a.ad_id for a in ads]}")
    print(f"  click billed via blind token: {clicked}; broker saw "
          f"{knowledge['profiles_seen']} profiles, clicks linkable: "
          f"{knowledge['linkable_to_users']}")
    print("  -> the architecture exists; the open problem is the "
          "business model.\n")

    print("== Sybil attacks ==")
    trust_graph = attach_trust(social_graph(200, kind="ba", seed=6), seed=7)
    augmented, sybils = inject_sybils(trust_graph, count=25,
                                      attack_edges=3, seed=8)
    attack = SybilAttack(augmented, sybils)
    detection = degree_cut_detection(augmented, sybils, seed=9)
    print(f"  25 sybils, 3 attack edges: best sybil trust from user0 = "
          f"{attack.best_sybil_trust('user0'):.2f} (capped by the cut)")
    print(f"  random walks land in the sybil region "
          f"{detection['sybil_region_mass']:.1%} of the time vs its "
          f"{detection['sybil_count_fraction']:.1%} population share "
          "-> detected.\n")

    print("== OSN anonymization / de-anonymization ==")
    small = social_graph(200, kind="ba", seed=10)
    anonymized, truth = naive_anonymize(small, seed=11)
    seeds = {real: truth[real] for real in list(truth)[:8]}
    predicted = deanonymize_by_seeds(small, anonymized, seeds)
    rate = reidentification_rate(truth, predicted, seeds)
    print(f"  'anonymized' graph published; attacker knows 8 users -> "
          f"re-identifies {rate:.0%} of all 200 nodes by structure alone.")
    print("  -> naive anonymization is not anonymization.")


if __name__ == "__main__":
    main()
