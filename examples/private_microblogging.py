#!/usr/bin/env python3
"""Private microblogging: Hummingbird + blind signatures (Sections III-F, V-A).

A Twitter-shaped service where the *server matches tweets to followers
without ever learning hashtags, contents, or interests*, and where even the
publisher cannot tell which hashtag a follower subscribed to.

Two key-dissemination variants from the paper, side by side:
* the OPRF protocol (Hummingbird proper, Section III-F),
* Chaum blind signatures (Section V-A).

Run:  python examples/private_microblogging.py
"""

import random

from repro.acl.hummingbird import (HummingbirdFollower, HummingbirdPublisher,
                                   HummingbirdServer)
from repro.search.blind_subscribe import BlindPublisher, BlindSubscriber

rng = random.Random(99)


def hummingbird_demo() -> None:
    print("== Hummingbird (OPRF key dissemination) ==")
    server = HummingbirdServer()
    alice = HummingbirdPublisher("alice", rng=rng)
    bob = HummingbirdFollower("bob", rng=rng)
    carol = HummingbirdFollower("carol", rng=rng)

    # Subscriptions run the oblivious-PRF protocol: alice authorizes each
    # follower for one hashtag without learning which one.
    bob.subscribe(alice, "#privacy")
    carol.subscribe(alice, "#cats")

    alice.tweet(server, "#privacy", "OPRFs hide follower interests")
    alice.tweet(server, "#cats", "my cat found the keyboard")
    alice.tweet(server, "#privacy", "metadata is the hard part")

    for follower in (bob, carol):
        print(f"\n{follower.name}'s matched tweets:")
        for publisher, hashtag, message in follower.fetch(server):
            print(f"  [{publisher} {hashtag}] {message}")

    print("\nwhat the SERVER stores (publisher, matching tag):")
    for publisher, tag in server.provider_view():
        print(f"  {publisher}: {tag.hex()}")
    print("-> tags are pseudorandom; the hashtags never appear anywhere.")


def blind_signature_demo() -> None:
    print("\n== Blind-signature subscriptions (Section V-A) ==")
    publisher = BlindPublisher("newsdesk", rng=rng)
    reader = BlindSubscriber("reader", rng=rng)

    # The reader blinds "#elections"; the publisher signs without seeing it.
    reader.subscribe(publisher, "#elections")
    publisher.publish("#elections", "turnout projections updated")
    publisher.publish("#sports", "cup final tonight")

    print("reader decrypts exactly the subscribed topic:")
    for keyword, message in reader.fetch_all(publisher):
        print(f"  [{keyword}] {message}")

    print("\nwhat the PUBLISHER saw during subscription "
          "(blinded values only):")
    for value in publisher.subscription_log:
        print(f"  {hex(value)[:40]}...")
    print("-> uniformly random group elements: interests stay hidden even "
          "from the publisher granting access.")


if __name__ == "__main__":
    hummingbird_demo()
    blind_signature_demo()
