#!/usr/bin/env python3
"""The availability-privacy trade-off, measured (Sections I-II).

"The main obstacle of decentralization is that users are responsible for
their data availability ... replication and caching are proven techniques
to ensure availability.  [But] the replica nodes are indeed another kind of
service provider in a small scale."

This script sweeps replication factors and placement policies under churn
and prints availability next to the resulting observer exposure — then
shows that encryption breaks the trade-off.

Run:  python examples/availability_vs_privacy.py
"""

import random
import statistics

from repro.overlay import replication as rep
from repro.overlay.churn import DiurnalChurn, ExponentialOnOff
from repro.workloads import social_graph

PEERS = [f"user{i}" for i in range(96)]
GRAPH = social_graph(96, kind="ba", seed=31)
PROBES = [float(t) for t in range(3600, 500000, 6000)]
OWNERS = PEERS[::8]


def sweep(policy, churn, replicas, encrypted):
    rng = random.Random(replicas)
    availability = []
    exposure = rep.ReplicaExposure()
    for owner in OWNERS:
        if policy == "random":
            placement = rep.place_random(owner, PEERS, replicas, rng)
        elif policy == "friends":
            placement = rep.place_friends(owner, GRAPH, replicas, rng)
        else:
            placement = rep.place_by_uptime(owner, PEERS, replicas,
                                            churn.uptime_fraction)
        availability.append(rep.measure_availability(placement, churn,
                                                     PROBES))
        exposure.record(placement, encrypted=encrypted)
    return (statistics.mean(availability),
            exposure.max_readable_view(len(PEERS)))


def main() -> None:
    churn = ExponentialOnOff(seed=32, spread=6.0)
    print("availability vs exposure (plaintext replicas), independent churn")
    print(f"{'policy':8s} {'replicas':>8s} {'availability':>13s} "
          f"{'worst replica view':>19s}")
    for policy in ("random", "friends", "uptime"):
        for replicas in (1, 2, 4, 8):
            availability, view = sweep(policy, churn, replicas, False)
            print(f"{policy:8s} {replicas:8d} {availability:13.3f} "
                  f"{view:19.3f}")

    print("\nsame sweep with encrypted replicas (Section III applied):")
    availability, view = sweep("uptime", churn, 8, True)
    print(f"{'uptime':8s} {8:8d} {availability:13.3f} {view:19.3f}"
          "   <- full availability, zero readable exposure")

    print("\nfriend replication under correlated (same-timezone) churn:")
    for correlation in (0.0, 1.0):
        diurnal = DiurnalChurn(seed=33, base=0.4, amplitude=0.35,
                               phase_correlation=correlation)
        availability, _ = sweep("friends", diurnal, 3, True)
        label = "independent" if correlation == 0.0 else "correlated "
        print(f"  {label} phases: availability={availability:.3f}")
    print("-> friends who sleep when you sleep are bad replica hosts, "
          "exactly the caveat behind Supernova's uptime tracking.")


if __name__ == "__main__":
    main()
