#!/usr/bin/env python3
"""Quickstart: a five-user DOSN in thirty lines.

Builds a distributed social network on a simulated Chord DHT, makes
friendships, posts encrypted content, assembles a verified news feed, and
prints what the most-exposed observer in the system could actually see —
the library's core loop in one script.

Run:  python examples/quickstart.py
"""

from repro.dosn import DosnNetwork


def main() -> None:
    # A DOSN over a simulated DHT ("dht"); try "central", "federation",
    # or "local" to switch the Section II architecture.
    net = DosnNetwork(architecture="dht", seed=7)

    for name in ("alice", "bob", "carol", "dave", "eve"):
        net.add_user(name)
    net.befriend("alice", "bob")
    net.befriend("alice", "carol")
    net.befriend("bob", "carol")

    # Posts are encrypted for the author's friend group, signed, and
    # hash-chained before they reach any storage node.
    cid = net.post("alice", "hello distributed world!", tags=["#first"])
    net.post("bob", "setting up my own replica tonight")
    net.post("carol", "who else is at ICDCS?")

    print("alice's post id:", cid)
    result = net.read("bob", "alice", cid)   # a typed ReadResult
    post = result.post
    print(f"bob reads alice: {post.text!r} (tags={post.tags}, "
          f"served from {result.source})")

    print("\nbob's verified feed:")
    feed = net.feed("bob")
    for item in feed.items:
        print(f"  [{item.author}#{item.post.sequence}] {item.post.text}")
    print("feed clean (all integrity checks passed):", feed.clean)

    # eve is nobody's friend: the ciphertext defeats her, not a list check.
    try:
        net.read("eve", "alice", cid)
    except Exception as exc:
        print(f"\neve tries to read alice's post -> {type(exc).__name__}: "
              f"{exc}")

    print("\nwho observes what (worst single observer):")
    worst = net.worst_observer()
    print(f"  observer={worst.observer!r}  "
          f"readable content={worst.content_view:.0%}  "
          f"metadata={worst.metadata_view:.0%}  "
          f"social graph={worst.graph_view:.0%}")


if __name__ == "__main__":
    main()
