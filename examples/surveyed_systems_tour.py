#!/usr/bin/env python3
"""A tour of the DOSNs the paper surveys, each doing its signature trick.

Five named systems, five defining mechanisms:

* PeerSoN    — message a friend you are never online with;
* Safebook   — fetch a profile whose owner is offline, anonymously;
* Cachet     — hot content served from friends' caches, policy intact;
* Supernova  — storekeepers picked by tracked uptime hold your data;
* Diaspora   — post to an 'aspect'; removal rotates the key.

Run:  python examples/surveyed_systems_tour.py
"""

from repro.systems import (CachetNetwork, DiasporaNetwork, PeersonNetwork,
                           SafebookNetwork, SupernovaNetwork)
from repro.workloads import social_graph


def peerson() -> None:
    print("== PeerSoN: asynchronous messaging over the DHT ==")
    net = PeersonNetwork(seed=1)
    for i in range(24):
        net.register(f"p{i}")
    net.befriend("p0", "p1")
    net.go_offline("p1")                       # bob's phone is asleep
    net.send_async("p0", "p1", b"call me when you land")
    net.go_offline("p0")                       # alice goes dark too
    net.go_online("p1")
    inbox = net.fetch_mailbox("p1")
    print(f"  p1 wakes up and finds: {inbox[0].decode()!r}")
    print("  (the two peers were never online simultaneously)\n")


def safebook() -> None:
    print("== Safebook: anonymous retrieval from friend mirrors ==")
    graph = social_graph(120, kind="ba", seed=2)
    net = SafebookNetwork(graph, seed=3)
    mirrors = net.publish_profile("user10", b"user10's profile")
    net.online["user10"] = False               # the owner logs off
    friend = str(next(iter(graph.neighbors("user10"))))
    profile, request, mirror = net.retrieve_profile(friend, "user10")
    print(f"  profile mirrored to {mirrors} friends; owner offline")
    print(f"  {friend} fetched it via {request.hops} ring hops, served "
          f"by mirror {mirror!r}")
    print("  the owner never learns who asked.\n")


def cachet() -> None:
    print("== Cachet: social caches + ABE policies + comment keys ==")
    graph = social_graph(60, kind="ws", seed=4)
    net = CachetNetwork(graph, seed=5)
    net.grant("user0", "user1", ["friends"])
    net.post("user0", "post1", "hot take", "friends",
             commenters=["user1"])
    first = net.read("user1", "user0", "post1")[1]
    second = net.read("user1", "user0", "post1")[1]
    print(f"  first read: {first.source} ({first.rpcs} rpcs); "
          f"second read: {second.source} ({second.rpcs} rpcs)")
    net.comment("user1", "post1", "agreed!")
    print(f"  verified comments: {net.verified_comments('post1')}\n")


def supernova() -> None:
    print("== Supernova: uptime-tracked storekeepers ==")
    net = SupernovaNetwork(seed=6)
    for i in range(30):
        net.register(f"n{i}")
    net.report_uptimes({f"n{i}": (0.2 if i < 25 else 0.97)
                        for i in range(30)})
    keepers = net.arrange_storekeepers("n0")
    net.store("n0", "album", b"holiday photos")
    net.overlay.peers["n0"].online = False     # owner disappears
    data = net.retrieve("n5", "n0", "album", owner_key=net.friend_key("n0"))
    print(f"  super-peers recommended keepers {keepers} "
          "(the high-uptime nodes)")
    print(f"  owner offline, data still served: {data.decode()!r}\n")


def diaspora() -> None:
    print("== Diaspora: pods + aspects + key rotation ==")
    net = DiasporaNetwork(seed=7, pods=4)
    for i in range(12):
        net.register(f"d{i}")
    net.create_aspect("d0", "family", ["d1", "d2"])
    old = net.post("d0", "family", "family-only news")
    net.remove_from_aspect("d0", "family", "d2")
    new = net.post("d0", "family", "d2 is out of the loop")
    print(f"  d1 reads the new post: {net.read('d1', new)!r}")
    try:
        net.read("d2", new)
    except Exception as exc:
        print(f"  d2 (removed) -> {type(exc).__name__}")
    print(f"  worst pod stores {net.worst_pod_content_fraction():.0%} of "
          "all ciphertexts; no pod reads any of them.")


if __name__ == "__main__":
    peerson()
    safebook()
    cachet()
    supernova()
    diaspora()
