#!/usr/bin/env python3
"""The paper's Section IV scenario, attack by attack.

"Assume that Bob is organizing a party and wants to invite his friends.
Alice receives an invitation letter in a packet from Bob, containing this
message: 'Come to my party held at my home on Friday'."

This script plays out every integrity aspect the paper enumerates — owner,
content, history, and relations — showing the attack first and then the
mechanism that defeats it.

Run:  python examples/party_invitation.py
"""

import dataclasses
import random

from repro.crypto.signatures import generate_schnorr_keypair
from repro.crypto.symmetric import random_key
from repro.exceptions import AccessDeniedError, IntegrityError
from repro.integrity import (Timeline, TimelineView, create_post,
                             open_envelope, seal, verify_comment,
                             write_comment)

rng = random.Random(2026)


def show(label, fn):
    try:
        fn()
        print(f"  {label}: accepted")
    except (IntegrityError, AccessDeniedError) as exc:
        print(f"  {label}: REJECTED — {exc}")


def main() -> None:
    bob = generate_schnorr_keypair("TOY", rng)
    mallory = generate_schnorr_keypair("TOY", rng)

    print("== Integrity of the data owner and the data content ==")
    letter = seal(bob, "bob", b"Come to my party held at my home on Friday",
                  issued_at=100.0, recipient="alice", expires_at=500.0,
                  sequence=0, rng=rng)
    show("genuine invitation",
         lambda: open_envelope(letter, bob.public_key, "alice", now=200.0))
    forged = seal(mallory, "bob", b"Party is cancelled", issued_at=100.0,
                  recipient="alice", rng=rng)
    show("Mallory forging Bob's name",
         lambda: open_envelope(forged, bob.public_key, "alice", now=200.0))
    tampered = dataclasses.replace(
        letter, body=b"Come to my party held at MALLORY'S on Friday")
    show("venue rewritten in transit",
         lambda: open_envelope(tampered, bob.public_key, "alice", now=200.0))

    print("\n== Integrity of data history ==")
    show("invitation presented after the party",
         lambda: open_envelope(letter, bob.public_key, "alice", now=9000.0))

    print("Bob's timeline is hash-chained; suppressing a post is visible:")
    timeline = Timeline("bob", bob)
    for text in (b"invitations sent", b"party moved to 8pm",
                 b"party is BYOB"):
        timeline.publish(text, rng=rng)
    view = TimelineView("bob", bob.public_key)
    censored = [timeline.entries[0], timeline.entries[2]]  # drop the move!
    show("provider hides 'party moved to 8pm'",
         lambda: view.accept_all(censored))
    honest_view = TimelineView("bob", bob.public_key)
    show("full honest timeline",
         lambda: honest_view.accept_all(timeline.entries))

    print("\n== Integrity of the data relations ==")
    to_carol = seal(bob, "bob", b"Carol, bring the cake!", issued_at=100.0,
                    recipient="carol", rng=rng)
    show("Carol's letter replayed at Alice",
         lambda: open_envelope(to_carol, bob.public_key, "alice", now=200.0))

    print("Per-post comment keys (Cachet): only invitees can RSVP:")
    invitee_keys = {"alice": random_key(32, rng)}
    post = create_post("party-post", "bob", b"Party on Friday!",
                       invitee_keys, rng=rng)
    rsvp = write_comment(post, "alice", invitee_keys["alice"],
                         b"I'll be there!", rng=rng)
    show("Alice's RSVP", lambda: verify_comment(post, rsvp))
    show("Eve crashing the comment thread",
         lambda: write_comment(post, "eve", random_key(32, rng), b"me too",
                               rng=rng))
    moved = dataclasses.replace(rsvp, body=b"I am NOT coming")
    show("Alice's RSVP reworded by the storage node",
         lambda: verify_comment(post, moved))


if __name__ == "__main__":
    main()
