#!/usr/bin/env python3
"""Secure social search, end to end (Section V / Table I rows 10-13).

Alice wants to find football fans to befriend.  The pipeline covers all
four secure-search concerns from the paper:

1. content privacy       — the shared index stores blinded terms;
2. privacy of searcher   — the query travels through Safebook-style
                            trusted-friend rings, so the candidates never
                            learn who searched;
3. owner privacy         — results are resource *handlers*; dereferencing
                            needs a ZKP credential check by the owner;
4. trusted search result — candidates are ranked by trust chains.

Run:  python examples/friend_search.py
"""

import random

from repro.search import (AccessGuard, Matryoshka, PseudonymousSearcher,
                          ResourceOwner, SearchIndex, rank_results)
from repro.workloads import attach_trust, social_graph

rng = random.Random(123)


def main() -> None:
    graph = attach_trust(social_graph(200, kind="ba", seed=11), seed=12)
    users = sorted(graph.nodes)

    print("== 1. building the blinded index ==")
    index = SearchIndex(blinding_secret=b"circle-shared-secret-32-bytes!!!")
    football_fans = [u for i, u in enumerate(users) if i % 5 == 0]
    for user in users:
        interest = "football weekends" if user in football_fans \
            else "chess and books"
        index.add_document(user, interest)
    print(f"  indexed {len(users)} profiles; host-visible vocabulary "
          f"leaked: {index.vocabulary_leaked()}")

    print("\n== 2. anonymous query via trusted-friend rings ==")
    searcher = "user7"
    hits = index.search("football")
    print(f"  query 'football' -> {len(hits)} candidates")
    # route the query so the first candidate can't identify the searcher
    target = hits[0]
    shells = Matryoshka(graph, target, depth=3)
    request = shells.route_request(searcher, rng)
    knowledge = shells.observer_knowledge(request)
    print(f"  query routed through {request.hops} hops; "
          f"{target} sees requester = "
          f"{knowledge[target]['knows_requester']}")
    print(f"  requester anonymity set at {target}: "
          f"{shells.requester_anonymity_set(len(users))} of {len(users)}")

    print("\n== 3. trust-ranked results ==")
    ranked = rank_results(graph, searcher, hits[:12], max_depth=3)
    for result in ranked[:5]:
        chain = " -> ".join(result.chain) if result.chain else "(no chain)"
        print(f"  {result.user:8s} score={result.score:.3f} "
              f"trust={result.trust:.3f} via {chain}")

    print("\n== 4. dereferencing a result through the owner's guard ==")
    best = ranked[0].user
    owner = ResourceOwner(best, rng=rng)
    owner.publish(f"{best}/profile", b"full profile: football, Sundays")
    guard = AccessGuard(owner)
    alice = PseudonymousSearcher(searcher, rng=rng)
    # out-of-band: the owner grants alice a credential (they matched!)
    alice.receive_credential(owner.issue_credential(f"{best}/profile"))
    content = alice.access(guard, f"{best}/profile")
    print(f"  dereferenced handler -> {content.decode()!r}")
    print(f"  guard's log shows only pseudonyms: {guard.grant_log}")

    stranger = PseudonymousSearcher("user199", rng=rng)
    try:
        stranger.access(guard, f"{best}/profile")
    except Exception as exc:
        print(f"  uncredentialed stranger -> {type(exc).__name__}")


if __name__ == "__main__":
    main()
