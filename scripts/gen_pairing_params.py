"""Generate supersingular-curve pairing parameters.

Curve: y^2 = x^3 + x over F_p with p = 3 (mod 4); supersingular,
#E(F_p) = p + 1, embedding degree 2.  We need a prime subgroup order q
with q | p + 1.  Search: pick random prime q of qbits, then find
cofactor h (h = 0 mod 4 so p = q*h - 1 = 3 mod 4) with p prime.
"""
import random
import sys

def is_probable_prime(n, k=40):
    if n < 2:
        return False
    for sp in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % sp == 0:
            return n == sp
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(k):
        a = random.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True

def gen_prime(bits):
    while True:
        c = random.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(c):
            return c

def gen_params(qbits, pbits, seed):
    random.seed(seed)
    q = gen_prime(qbits)
    hbits = pbits - qbits
    while True:
        h = random.getrandbits(hbits) | (1 << (hbits - 1))
        h -= h % 4  # h = 0 mod 4 => p = 3 mod 4
        if h <= 0:
            continue
        p = q * h - 1
        if p % 4 == 3 and is_probable_prime(p):
            return p, q, h

for name, qbits, pbits, seed in [("TOY", 64, 160, 1), ("TEST", 128, 256, 2), ("STD", 160, 512, 3)]:
    p, q, h = gen_params(qbits, pbits, seed)
    assert (p + 1) % q == 0
    print(f"{name}_P = {p}")
    print(f"{name}_Q = {q}")
    print(f"{name}_H = {h}")
