"""Write the generated Table I matrix artifact (docs/table1_matrix.md).

Usage::

    PYTHONPATH=src python scripts/gen_table1.py [--check]

Without flags, (re)writes ``docs/table1_matrix.md`` from the live
registries (:mod:`repro.stack.table1`).  With ``--check``, writes nothing
and exits non-zero if the committed file differs from what the code would
generate — the CI drift gate.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.stack.table1 import render_matrix

ARTIFACT = Path(__file__).resolve().parent.parent / "docs" / "table1_matrix.md"


def main(argv: list) -> int:
    check = "--check" in argv
    rendered = render_matrix()
    if check:
        committed = ARTIFACT.read_text() if ARTIFACT.exists() else ""
        if committed != rendered:
            sys.stderr.write(
                f"{ARTIFACT} is stale: regenerate with\n"
                "  PYTHONPATH=src python scripts/gen_table1.py\n")
            return 1
        print(f"{ARTIFACT} is up to date")
        return 0
    ARTIFACT.write_text(rendered)
    print(f"wrote {ARTIFACT} ({len(rendered)} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
