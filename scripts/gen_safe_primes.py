"""Regenerate the safe primes in repro.crypto.params.

A safe prime ``p = 2q + 1`` (q prime) gives the prime-order subgroups the
discrete-log schemes build on.  The search is slow (minutes for 1024 bits),
which is why the results are checked into ``params.py`` and merely
re-validated by the test suite.

Usage:  python scripts/gen_safe_primes.py
"""

import random

from repro.crypto.numbertheory import is_probable_prime


def find_safe_prime(bits: int, rng: random.Random) -> int:
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if is_probable_prime(q) and is_probable_prime(2 * q + 1):
            return 2 * q + 1


def main() -> None:
    rng = random.Random(42)  # the seed that produced the checked-in values
    for bits in (256, 512, 1024):
        print(f"    {bits}: {find_safe_prime(bits, rng)},")


if __name__ == "__main__":
    main()
